#include "mqtt/broker.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <limits>

#include "common/audit.hpp"
#include "common/log.hpp"

namespace ifot::mqtt {
namespace {
constexpr const char* kLog = "mqtt.broker";

/// splitmix64 finalizer: turns the std/qos hash inputs into well-mixed
/// 64-bit values so the commutative sum below keeps its entropy.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Order-independent fingerprint of a raw (subscriber key, granted QoS)
/// match multiset. Commutative (a sum of per-element mixes) so the
/// trie's unsorted match order never matters, which keeps
/// re-fingerprinting a topic as cheap as one tree_.match() walk — no
/// sort, no dedup, no copies. Equal match multisets derive equal plans,
/// so an unchanged fingerprint proves a cached plan is still exact.
std::uint64_t route_fingerprint(
    const TopicTree<std::string, QoS>::MatchList& matches) {
  std::uint64_t fp = 0x9e3779b97f4a7c15ULL ^ mix64(matches.size());
  for (const auto& [key, qos] : matches) {
    const std::uint64_t h = std::hash<std::string_view>{}(*key);
    fp += mix64(h ^ (static_cast<std::uint64_t>(qos) << 62));
  }
  return fp;
}

}  // namespace

Broker::Broker(Scheduler& sched, BrokerConfig cfg)
    : sched_(sched),
      cfg_(cfg),
      route_cache_(cfg.route_cache_entries, &counters_) {
  refingerprint_ = [this](std::string_view topic) {
    match_scratch_.clear();
    tree_.match(topic, match_scratch_);
    return route_fingerprint(match_scratch_);
  };
  if (cfg_.sys_interval > 0) arm_sys_stats();
}

Broker::~Broker() {
  if (sys_timer_ != 0) sched_.cancel(sys_timer_);
  for (auto& [_, link] : links_) {
    if (link->keepalive_timer != 0) sched_.cancel(link->keepalive_timer);
  }
  for (auto& [_, session] : sessions_) {
    if (session->retry_timer != 0) sched_.cancel(session->retry_timer);
  }
}

std::size_t Broker::inbound_qos2_backlog() const {
  std::size_t n = 0;
  for (const auto& [_, s] : sessions_) n += s->inbound_qos2.size();
  return n;
}

std::size_t Broker::connected_count() const {
  std::size_t n = 0;
  for (const auto& [_, s] : sessions_) {
    if (s->connected) ++n;
  }
  return n;
}

void Broker::on_link_open(LinkId link, SendFn send, CloseFn close) {
  auto l = std::make_unique<Link>();
  l->id = link;
  l->outbox =
      std::make_unique<Outbox>(cfg_.egress, std::move(send), &counters_);
  l->close = std::move(close);
  l->last_rx = sched_.now();
  links_[link] = std::move(l);
  counters_.add("links_opened");
  audit_invariants();
}

void Broker::on_link_data(LinkId link, BytesView data) {
  auto it = links_.find(link);
  if (it == links_.end()) return;
  Link* l = it->second.get();
  l->decoder.feed(data);
  l->last_rx = sched_.now();
  while (true) {
    auto next = l->decoder.next();
    if (!next) {
      IFOT_LOG(kWarn, kLog) << "protocol error on link " << link << ": "
                            << next.error().to_string();
      counters_.add("protocol_errors");
      drop_link(*l, /*publish_will=*/true);
      audit_invariants();
      flush_egress();
      return;
    }
    if (!next.value()) {
      flush_egress();
      return;  // need more bytes
    }
    handle_packet(*l, std::move(*next.value()));
    audit_invariants();
    // handle_packet may have dropped the link.
    it = links_.find(link);
    if (it == links_.end()) {
      flush_egress();
      return;
    }
    l = it->second.get();
  }
}

void Broker::on_link_closed(LinkId link) {
  auto it = links_.find(link);
  if (it == links_.end()) return;
  drop_link(*it->second, /*publish_will=*/true);
  audit_invariants();
  flush_egress();
}

Broker::Session& Broker::session_of(Link& link) {
  auto it = sessions_.find(link.session);
  assert(it != sessions_.end());
  return *it->second;
}

void Broker::handle_packet(Link& link, Packet packet) {
  counters_.add("packets_in");
  if (!link.got_connect) {
    if (auto* c = std::get_if<Connect>(&packet)) {
      handle_connect(link, std::move(*c));
    } else {
      // First packet must be CONNECT (§3.1).
      drop_link(link, /*publish_will=*/false);
    }
    return;
  }
  Session& session = session_of(link);
  std::visit(
      [&](auto&& p) {
        using T = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<T, Connect>) {
          // A second CONNECT is a protocol violation per §3.1.0-2, but a
          // client retrying over a lossy link (its CONNACK was dropped)
          // sends exactly the same CONNECT again. Tolerate that case by
          // re-acknowledging; punish a *different* identity per spec.
          if (p.client_id == session.client_id) {
            counters_.add("connect_reacks");
            send_packet(link, Packet{Connack{false, ConnectCode::kAccepted}});
          } else {
            drop_link(link, /*publish_will=*/true);
          }
        } else if constexpr (std::is_same_v<T, Publish>) {
          handle_publish(session, std::move(p));
        } else if constexpr (std::is_same_v<T, Puback>) {
          auto it = session.inflight.find(p.packet_id);
          if (it != session.inflight.end() &&
              it->second.msg.qos == QoS::kAtLeastOnce) {
            // The session retry timer self-disarms when it next fires
            // and finds nothing due; no per-message cancel needed.
            session.inflight.erase(it);
            pump_queue(session);
          }
        } else if constexpr (std::is_same_v<T, Pubrec>) {
          auto it = session.inflight.find(p.packet_id);
          if (it != session.inflight.end() &&
              it->second.msg.qos == QoS::kExactlyOnce) {
            it->second.awaiting_pubcomp = true;
            it->second.attempts = 0;
          }
          send_packet(link, Packet{Pubrel{p.packet_id}});
        } else if constexpr (std::is_same_v<T, Pubrel>) {
          session.inbound_qos2.erase(p.packet_id);
          send_packet(link, Packet{Pubcomp{p.packet_id}});
        } else if constexpr (std::is_same_v<T, Pubcomp>) {
          auto it = session.inflight.find(p.packet_id);
          if (it != session.inflight.end() && it->second.awaiting_pubcomp) {
            session.inflight.erase(it);
            pump_queue(session);
          }
        } else if constexpr (std::is_same_v<T, Subscribe>) {
          handle_subscribe(session, p);
        } else if constexpr (std::is_same_v<T, Unsubscribe>) {
          handle_unsubscribe(session, p);
        } else if constexpr (std::is_same_v<T, Pingreq>) {
          send_packet(link, Packet{Pingresp{}});
        } else if constexpr (std::is_same_v<T, Disconnect>) {
          session.will.reset();  // graceful: will discarded (§3.14)
          drop_link(link, /*publish_will=*/false);
        } else {
          // CONNACK/SUBACK/UNSUBACK/PINGRESP from a client are invalid.
          drop_link(link, /*publish_will=*/true);
        }
      },
      std::move(packet));
}

void Broker::handle_connect(Link& link, Connect c) {
  link.got_connect = true;
  if (c.client_id.empty()) {
    if (!c.clean_session) {
      send_packet(link, Packet{Connack{false, ConnectCode::kIdentifierRejected}});
      drop_link(link, /*publish_will=*/false);
      return;
    }
    c.client_id = "auto-" + std::to_string(++generation_);
  }

  // Session takeover: an existing connection with the same id is dropped.
  bool session_present = false;
  auto it = sessions_.find(c.client_id);
  if (it != sessions_.end()) {
    Session& old = *it->second;
    if (old.connected) {
      auto link_it = links_.find(old.link);
      if (link_it != links_.end()) {
        counters_.add("session_takeovers");
        drop_link(*link_it->second, /*publish_will=*/true);
      }
    }
    it = sessions_.find(c.client_id);  // drop_link may erase clean sessions
  }
  if (c.clean_session) {
    if (it != sessions_.end()) {
      purge_session_state(*it->second);
      if (it->second->retry_timer != 0) sched_.cancel(it->second->retry_timer);
      sessions_.erase(it);
    }
  } else if (it != sessions_.end()) {
    session_present = true;
  }

  auto& session = sessions_[c.client_id];
  if (!session) {
    session = std::make_unique<Session>(node_pool_);
    session->client_id = SharedString(c.client_id);
  }
  // "$bridge/..." client ids mark federation bridges: their filters live
  // in bridge_links_ (never in the subscription tree), and their
  // publishes arrive wrapped as "$fed/<hops>/<topic>".
  session->is_bridge =
      std::string_view(c.client_id).substr(0, kBridgeClientPrefix.size()) ==
      kBridgeClientPrefix;
  if (session->is_bridge &&
      bridge_links_.find(session->client_id.view()) == bridge_links_.end()) {
    BridgeLink bl;
    bl.client_id = session->client_id;
    bridge_links_.emplace(session->client_id.str(), std::move(bl));
    counters_.add("bridge_links_opened");
  }
  session->inbound_qos2.set_capacity(cfg_.max_inbound_qos2_per_session);
  session->clean = c.clean_session;
  // Wills are rare at scale, so Session stores a pointer; the optional
  // from the decoded CONNECT moves to the heap only when present.
  session->will =
      c.will ? std::make_unique<Will>(std::move(*c.will)) : nullptr;
  session->link = link.id;
  session->connected = true;
  session->keep_alive_s = c.keep_alive_s;
  link.session = session->client_id;  // shares the buffer

  send_packet(link, Packet{Connack{session_present, ConnectCode::kAccepted}});
  counters_.add("connects");
  arm_keepalive(link);

  // Redeliver inflight messages from the previous connection (§4.4).
  // The stored wire template is patched (id + DUP), never re-encoded.
  for (auto& [pid, inflight] : session->inflight) {
    if (inflight.awaiting_pubcomp) {
      send_packet(link, Packet{Pubrel{pid}});
    } else {
      inflight.msg.dup = true;
      send_inflight_frame(*session, inflight);
    }
    arm_retry(*session, pid);
  }
  pump_queue(*session);
}

void Broker::handle_publish(Session& session, Publish p) {
  if (!valid_topic_name(p.topic)) {
    auto it = links_.find(session.link);
    if (it != links_.end()) drop_link(*it->second, /*publish_will=*/true);
    return;
  }
  if (p.qos > cfg_.max_qos) p.qos = cfg_.max_qos;
  counters_.add("publishes_in");
  // Bridge ingress: unwrap "$fed/<hops>/<topic>" from bridge sessions so
  // the inner topic routes locally (and carries its hop count into any
  // further forwards). Wraps from ordinary clients are spoofs, malformed
  // wraps and exhausted hop budgets are dropped — but the QoS ack flow
  // below still runs so the sender's flow-control state advances.
  const Session* bridge_origin = nullptr;
  std::uint32_t ingress_hops = 0;
  bool drop = false;
  if (is_fed_topic(p.topic.view())) {
    if (!session.is_bridge) {
      counters_.add("fed_spoofs_dropped");
      drop = true;
    } else if (const auto fed = parse_fed_topic(p.topic.view()); !fed) {
      counters_.add("bridge_malformed_dropped");
      drop = true;
    } else if (fed.value().hops > cfg_.bridge_hop_budget) {
      counters_.add("bridge_loops_dropped");
      drop = true;
    } else {
      counters_.add("bridge_in");
      bridge_origin = &session;
      ingress_hops = fed.value().hops;
      p.topic = SharedString(std::string(fed.value().inner));
    }
  }
  switch (p.qos) {
    case QoS::kAtMostOnce:
      if (!drop) route(std::move(p), session.client_id, bridge_origin,
                       ingress_hops);
      break;
    case QoS::kAtLeastOnce: {
      const std::uint16_t pid = p.packet_id;
      if (!drop) route(std::move(p), session.client_id, bridge_origin,
                       ingress_hops);
      send_packet(session, Packet{Puback{pid}});
      break;
    }
    case QoS::kExactlyOnce: {
      const std::uint16_t pid = p.packet_id;
      const std::uint64_t evictions_before = session.inbound_qos2.evictions();
      if (session.inbound_qos2.insert(pid)) {
        if (!drop) {
          route(std::move(p), session.client_id, bridge_origin,
                ingress_hops);  // first sight: route now
        }
      } else {
        counters_.add("qos2_duplicates");
      }
      const std::uint64_t evicted =
          session.inbound_qos2.evictions() - evictions_before;
      if (evicted > 0) counters_.add("qos2_dedup_evictions", evicted);
      send_packet(session, Packet{Pubrec{pid}});
      break;
    }
  }
}

void Broker::handle_subscribe(Session& session, const Subscribe& s) {
  Suback ack;
  ack.packet_id = s.packet_id;
  for (const auto& req : s.topics) {
    // Shared subscriptions get the typed grammar before the generic
    // filter rules: "$share/g/f" is a *valid* MQTT 3.1.1 filter string,
    // so the share judgement must come first or a malformed group name
    // would silently become a plain (never-matching) subscription.
    if (is_share_filter(req.filter)) {
      const auto parsed = parse_share_filter(req.filter);
      if (!parsed || session.is_bridge) {
        counters_.add("share_rejected");
        ack.return_codes.push_back(kSubackFailure);
        continue;
      }
      const QoS granted = std::min(req.qos, cfg_.max_qos);
      subscribe_share(session, req.filter, parsed.value(), granted);
      ack.return_codes.push_back(static_cast<std::uint8_t>(granted));
      counters_.add("subscriptions");
      continue;
    }
    if (!valid_topic_filter(req.filter)) {
      ack.return_codes.push_back(kSubackFailure);
      continue;
    }
    const QoS granted = std::min(req.qos, cfg_.max_qos);
    if (session.is_bridge) {
      subscribe_bridge(session, req.filter, granted);
    } else {
      session.subscriptions.assign(req.filter, granted);
      tree_.insert(req.filter, session.client_id, granted);
    }
    ack.return_codes.push_back(static_cast<std::uint8_t>(granted));
    counters_.add("subscriptions");
  }
  send_packet(session, Packet{ack});

  // Retained messages matching each newly granted filter (§3.3.1-6).
  // Overlapping filters in one SUBSCRIBE ("sensors/#" + "sensors/+/temp")
  // used to replay the same retained topic once per filter; collect the
  // full (message, granted) match set first, then deliver each retained
  // topic exactly once at the highest granted QoS among the filters that
  // matched it (§3.3.5 overlapping-subscription rule).
  retained_replay_scratch_.clear();
  for (std::size_t i = 0; i < s.topics.size(); ++i) {
    if (ack.return_codes[i] == kSubackFailure) continue;
    // Shared subscriptions get no retained replay: the group balances a
    // live stream, and replaying state to whichever member subscribed
    // last would deliver the same retained message once per joiner.
    if (is_share_filter(s.topics[i].filter)) continue;
    retained_ptr_scratch_.clear();
    retained_.collect(s.topics[i].filter, retained_ptr_scratch_);
    const QoS granted = static_cast<QoS>(ack.return_codes[i]);
    for (const Publish* msg : retained_ptr_scratch_) {
      retained_replay_scratch_.emplace_back(msg, granted);
    }
  }
  std::sort(retained_replay_scratch_.begin(), retained_replay_scratch_.end(),
            [](const std::pair<const Publish*, QoS>& a,
               const std::pair<const Publish*, QoS>& b) {
              if (a.first->topic.view() != b.first->topic.view()) {
                return a.first->topic.view() < b.first->topic.view();
              }
              return a.second < b.second;
            });
  for (std::size_t i = 0; i < retained_replay_scratch_.size(); ++i) {
    if (i + 1 < retained_replay_scratch_.size() &&
        retained_replay_scratch_[i + 1].first ==
            retained_replay_scratch_[i].first) {
      continue;  // keep last (sorted -> highest granted QoS is later)
    }
    const auto& [msg, granted] = retained_replay_scratch_[i];
    Publish out = *msg;
    out.retain = true;
    out.qos = std::min(out.qos, granted);
    if (session.is_bridge) {
      // Retained sync across the mesh: a freshly subscribed bridge gets
      // this broker's matching retained state wrapped at hops = 1, so
      // the peer stores it under the inner topic with retain set.
      write_fed_topic(fed_topic_scratch_, 1, out.topic.view());
      out.topic = SharedString(fed_topic_scratch_);
      counters_.add("bridge_out");
    }
    deliver(session, std::move(out), {});
  }
}

void Broker::handle_unsubscribe(Session& session, const Unsubscribe& u) {
  for (const auto& filter : u.topics) {
    if (session.is_bridge) {
      const auto bit = bridge_links_.find(session.client_id.view());
      if (bit != bridge_links_.end()) {
        auto& fs = bit->second.filters;
        fs.erase(std::remove_if(fs.begin(), fs.end(),
                                [&](const std::pair<SharedString, QoS>& f) {
                                  return f.first.view() == filter;
                                }),
                 fs.end());
      }
      continue;
    }
    if (is_share_filter(filter)) {
      if (session.subscriptions.erase(filter)) {
        unsubscribe_share(filter, session.client_id.view());
      }
      continue;
    }
    session.subscriptions.erase(filter);
    tree_.erase(filter, session.client_id);
  }
  send_packet(session, Packet{Unsuback{u.packet_id}});
}

void Broker::subscribe_share(Session& session, const std::string& share_key,
                             const ShareFilter& parsed, QoS granted) {
  auto [it, created] = shares_.try_emplace(share_key);
  Share& sh = it->second;
  if (created) {
    sh.group = SharedString(std::string(parsed.group));
    sh.filter = SharedString(std::string(parsed.filter));
    counters_.add("share_groups_opened");
  }
  bool member_known = false;
  QoS max_granted = granted;
  for (auto& m : sh.members) {
    if (m.client_id.view() == session.client_id.view()) {
      m.granted = granted;
      member_known = true;
    }
    max_granted = std::max(max_granted, m.granted);
  }
  if (!member_known) {
    sh.members.push_back(Share::Member{session.client_id, granted});
    counters_.add("share_members_joined");
  }
  session.subscriptions.assign(share_key, granted);
  // One tree entry per group — keyed by the share string, valued at the
  // members' max granted QoS — so a cached fan-out plan names the group
  // once and member churn only moves the group's granted level.
  tree_.insert(sh.filter.view(), share_key, max_granted);
}

void Broker::subscribe_bridge(Session& session, const std::string& filter,
                              QoS granted) {
  auto it = bridge_links_.find(session.client_id.view());
  if (it == bridge_links_.end()) {
    // Defensive: handle_connect registers the link; a takeover race
    // should never leave a connected bridge without one.
    BridgeLink bl;
    bl.client_id = session.client_id;
    it = bridge_links_.emplace(session.client_id.str(), std::move(bl)).first;
  }
  for (auto& [f, q] : it->second.filters) {
    if (f.view() == filter) {
      q = granted;
      return;
    }
  }
  it->second.filters.emplace_back(SharedString(filter), granted);
  counters_.add("bridge_subscriptions");
}

void Broker::unsubscribe_share(const std::string& share_key,
                               std::string_view client_id) {
  const auto it = shares_.find(share_key);
  if (it == shares_.end()) return;
  Share& sh = it->second;
  std::size_t idx = sh.members.size();
  for (std::size_t i = 0; i < sh.members.size(); ++i) {
    if (sh.members[i].client_id.view() == client_id) {
      idx = i;
      break;
    }
  }
  if (idx == sh.members.size()) return;
  sh.members.erase(sh.members.begin() +
                   static_cast<std::ptrdiff_t>(idx));
  // Keep the round-robin cursor on the member it was about to serve.
  if (idx < sh.rr) --sh.rr;
  if (sh.rr >= sh.members.size()) sh.rr = 0;
  counters_.add("share_members_left");
  if (sh.members.empty()) {
    tree_.erase(sh.filter.view(), share_key);
    shares_.erase(it);
    counters_.add("share_groups_closed");
    return;
  }
  QoS max_granted = QoS::kAtMostOnce;
  for (const auto& m : sh.members) {
    max_granted = std::max(max_granted, m.granted);
  }
  tree_.insert(sh.filter.view(), share_key, max_granted);
}

void Broker::purge_session_state(Session& session) {
  tree_.erase_key(session.client_id);
  for (const auto& [filter, granted] : session.subscriptions) {
    (void)granted;
    if (is_share_filter(filter.view())) {
      unsubscribe_share(filter.str(), session.client_id.view());
    }
  }
  if (session.is_bridge) {
    const auto it = bridge_links_.find(session.client_id.view());
    if (it != bridge_links_.end()) {
      bridge_links_.erase(it);
      counters_.add("bridge_links_closed");
    }
  }
}

void Broker::publish_local(SharedString topic, SharedPayload payload, QoS qos,
                           bool retain) {
  Publish p;
  p.topic = std::move(topic);
  p.payload = std::move(payload);
  p.qos = qos;
  p.retain = retain;
  route(std::move(p), "$broker");
  audit_invariants();
  flush_egress();
}

void Broker::route(Publish p, const std::string& origin,
                   const Session* bridge_origin,
                   std::uint32_t ingress_hops) noexcept {
  counters_.add("routed");
  (void)origin;
  if (p.retain) {
    if (p.payload.empty()) {
      retained_.clear(p.topic.view());
    } else {
      // Payload is shared, so the retained copy costs only header state
      // plus trie path nodes (set() clears DUP itself).
      retained_.set(p);
    }
  }

  // Resolve the fan-out plan: cache hit on the steady state, derived
  // from the trie (and cached at the current tree version) on a miss.
  // $-topics stay out of the cache — a $SYS stats tick publishes dozens
  // of distinct names and would churn the LRU working set.
  const std::string_view topic_view = p.topic.view();
  const bool cacheable = !topic_view.empty() && topic_view.front() != '$';
  const RouteCache::Plan* plan =
      cacheable ? route_cache_.lookup(topic_view, tree_.version(), refingerprint_)
                : nullptr;
  if (plan == nullptr) {
    derive_plan(topic_view, match_scratch_, plan_scratch_);
    if (cacheable) {
      plan = route_cache_.insert(topic_view, tree_.version(), plan_scratch_);
    }
    if (plan == nullptr) plan = &plan_scratch_;  // uncacheable or disabled
  }
  const Publish original = std::move(p);
  // Encode-once fan-out at every QoS level: each effective-QoS group of
  // this message shares one wire template (retain/dup cleared per
  // [MQTT-3.3.1-9]). QoS 0 deliveries reuse the frame untouched; QoS 1/2
  // deliveries patch only the 2 packet-id bytes at flush time.
  std::array<WireTemplateRef, 3> group;
  auto group_template = [&](QoS qos) -> const WireTemplateRef& {
    auto& slot = group[static_cast<std::size_t>(qos)];
    if (!slot) {
      Publish wire_msg;
      wire_msg.topic = original.topic;      // shares the string
      wire_msg.payload = original.payload;  // shares the buffer
      wire_msg.qos = qos;
      slot = make_template(wire_msg);
    }
    return slot;
  };
  // Execute the plan. Iterating granted-QoS groups is safe while holding
  // `plan` into the cache: deliveries never subscribe, unsubscribe or
  // drop links, so neither the trie nor the cache mutates under us.
  for (std::size_t g = 0; g < plan->by_qos.size(); ++g) {
    const QoS granted = static_cast<QoS>(g);
    for (const std::string& client_id : plan->by_qos[g]) {
      Session* target = nullptr;
      QoS target_granted = granted;
      if (std::string_view(client_id).substr(0, kSharePrefix.size()) ==
          kSharePrefix) {
        // A "$share/..." plan entry names a load group, not a session:
        // resolve exactly one member per publish. The member's own
        // granted QoS replaces the group's (group_template is indexed
        // by effective QoS, so any member level shares correctly).
        target = resolve_share_member(client_id, target_granted);
        if (target == nullptr) continue;
        counters_.add("share_deliveries");
      } else {
        auto it = sessions_.find(client_id);
        if (it == sessions_.end()) continue;
        target = it->second.get();
      }
      Session& session = *target;
      const QoS effective = std::min(original.qos, target_granted);
      if (effective == QoS::kAtMostOnce) {
        if (!session.connected) {
          counters_.add("dropped_qos0_offline");
          continue;
        }
        auto lit = links_.find(session.link);
        if (lit == links_.end()) {
          counters_.add("dropped_qos0_offline");
          continue;
        }
        counters_.add("payload_bytes_shared", original.payload.size());
        counters_.add("topic_bytes_shared", original.topic.size());
        counters_.add("delivered_qos0");
        send_template(*lit->second, group_template(effective), 0, false);
      } else {
        Publish out;
        out.topic = original.topic;      // shares the string
        out.payload = original.payload;  // shares the buffer
        out.qos = effective;             // retain/dup cleared [MQTT-3.3.1-9]
        counters_.add("payload_bytes_shared", original.payload.size());
        counters_.add("topic_bytes_shared", original.topic.size());
        deliver(session, std::move(out), group_template(effective));
      }
    }
  }
  // Federation egress: after the local fan-out, offer the message to
  // every bridge whose filters match. Runs outside the plan (bridge
  // filters never enter tree_ or the cache) and after it, so local
  // subscribers are served before mesh traffic.
  if (!bridge_links_.empty()) {
    // static: alloc(wrapped-topic handle + one wrap template per
    // effective QoS per forwarded publish; bridge fan-out is
    // mesh-degree bounded, not subscriber bounded)
    forward_to_bridges(original, bridge_origin, ingress_hops);
  }
}

void Broker::forward_to_bridges(const Publish& p, const Session* bridge_origin,
                                std::uint32_t ingress_hops) noexcept {
  const std::uint32_t next_hops = ingress_hops + 1;
  SharedString wrapped;  // built once, shared by every matching bridge
  std::array<WireTemplateRef, 3> group;
  for (auto& [cid, bl] : bridge_links_) {
    if (bridge_origin != nullptr &&
        bridge_origin->client_id.view() == cid) {
      // Loop rule #1 (no-echo): never forward back over the link the
      // message arrived on.
      counters_.add("bridge_echo_suppressed");
      continue;
    }
    bool matched = false;
    QoS granted = QoS::kAtMostOnce;
    for (const auto& [filter, q] : bl.filters) {
      // topic_matches applies the §4.7.2 $-rule, so "$SYS/#" reaches a
      // bridge that asked for mesh health while a bare "#" never leaks
      // $-topics — same asymmetry ordinary subscribers get.
      if (!topic_matches(filter.view(), p.topic.view())) continue;
      matched = true;
      granted = std::max(granted, q);
    }
    if (!matched) continue;
    if (next_hops > cfg_.bridge_hop_budget) {
      // Loop rule #2 (hop budget): the wrap's hop count crossed the
      // mesh diameter bound; a routing cycle dies here.
      counters_.add("bridge_loops_dropped");
      continue;
    }
    const auto sit = sessions_.find(cid);
    if (sit == sessions_.end()) continue;
    Session& bridge_session = *sit->second;
    if (wrapped.empty()) {
      write_fed_topic(fed_topic_scratch_, next_hops, p.topic.view());
      wrapped = SharedString(fed_topic_scratch_);
    }
    const QoS effective = std::min(p.qos, granted);
    counters_.add("bridge_out");
    ++bl.forwarded;
    auto& slot = group[static_cast<std::size_t>(effective)];
    if (!slot) {
      Publish wire_msg;
      wire_msg.topic = wrapped;     // shares the wrap string
      wire_msg.payload = p.payload; // shares the buffer
      wire_msg.qos = effective;
      // Unlike the local fan-out ([MQTT-3.3.1-9] clears retain), the
      // wrap carries the retain bit: the remote broker must store the
      // inner topic as retained state.
      wire_msg.retain = p.retain;
      slot = make_template(wire_msg);
    }
    if (effective == QoS::kAtMostOnce) {
      if (!bridge_session.connected) {
        counters_.add("dropped_qos0_offline");
        continue;
      }
      const auto lit = links_.find(bridge_session.link);
      if (lit == links_.end()) {
        counters_.add("dropped_qos0_offline");
        continue;
      }
      send_template(*lit->second, slot, 0, false);
    } else {
      Publish out;
      out.topic = wrapped;
      out.payload = p.payload;
      out.qos = effective;
      out.retain = p.retain;
      deliver(bridge_session, std::move(out), slot);
    }
  }
}

Broker::Session* Broker::resolve_share_member(std::string_view share_key,
                                              QoS& granted) noexcept {
  const auto it = shares_.find(share_key);
  if (it == shares_.end() || it->second.members.empty()) return nullptr;
  Share& sh = it->second;
  const std::size_t n = sh.members.size();
  // Deterministic round-robin from the cursor, skipping disconnected
  // members; when the whole group is offline the cursor member takes the
  // delivery anyway (a persistent worker's queue absorbs it, a clean one
  // drops by the ordinary offline rules).
  std::size_t chosen = sh.rr % n;
  for (std::size_t probe = 0; probe < n; ++probe) {
    const std::size_t idx = (sh.rr + probe) % n;
    const auto sit = sessions_.find(sh.members[idx].client_id.view());
    if (sit != sessions_.end() && sit->second->connected) {
      chosen = idx;
      break;
    }
  }
  const Share::Member& m = sh.members[chosen];
  sh.rr = (chosen + 1) % n;
  ++sh.deliveries;
  granted = m.granted;
  const auto sit = sessions_.find(m.client_id.view());
  return sit == sessions_.end() ? nullptr : sit->second.get();
}

// static: alloc(plan assembly on a route-cache miss — subscriber ids
// copy into the plan groups; steady publishes take the cached path)
void Broker::derive_plan(std::string_view topic,
                         TopicTree<std::string, QoS>::MatchList& matches,
                         RouteCache::Plan& out) const noexcept {
  for (auto& group : out.by_qos) group.clear();
  matches.clear();
  tree_.match(topic, matches);
  // Fingerprint the raw match multiset (order-independent) before the
  // dedup below: revalidation recomputes it with one tree walk, no sort.
  out.fingerprint = route_fingerprint(matches);
  // Dedup by subscriber, keeping the highest granted QoS among matching
  // filters (overlapping-subscription rule, §3.3.5). Sorting by (key,
  // QoS) makes "keep last" the max-QoS entry and each plan group sorted.
  std::sort(matches.begin(), matches.end(),
            [](const TopicTree<std::string, QoS>::Match& a,
               const TopicTree<std::string, QoS>::Match& b) {
              if (*a.first != *b.first) return *a.first < *b.first;
              return a.second < b.second;
            });
  for (std::size_t i = 0; i < matches.size(); ++i) {
    if (i + 1 < matches.size() && *matches[i + 1].first == *matches[i].first) {
      continue;  // keep last (sorted -> highest QoS is the later entry)
    }
    out.by_qos[static_cast<std::size_t>(matches[i].second)].push_back(
        *matches[i].first);
  }
}

// static: alloc(inflight/queued growth is served by the session
// NodePool — nodes recycle; bucket growth is bounded by the
// max_inflight/max_queued_per_session window sizes)
void Broker::deliver(Session& session, Publish p,
                     WireTemplateRef wire) noexcept {
  if (p.qos == QoS::kAtMostOnce) {
    if (session.connected) {
      send_packet(session, Packet{std::move(p)});
      counters_.add("delivered_qos0");
    } else {
      counters_.add("dropped_qos0_offline");
    }
    return;
  }
  if (session.connected &&
      session.inflight.size() < cfg_.max_inflight_per_session) {
    const std::uint16_t pid = alloc_packet_id(session);
    p.packet_id = pid;
    auto [it, inserted] = session.inflight.emplace(
        pid, InflightOut{std::move(p), std::move(wire)});
    assert(inserted);
    IFOT_AUDIT_ASSERT(inserted && pid != 0,
                      "allocated packet id must be fresh and nonzero");
    send_inflight(session, it->second);
  } else if (session.queued.size() < cfg_.max_queued_per_session) {
    session.queued.push_back(QueuedOut{std::move(p), std::move(wire)});
    counters_.add("queued");
  } else {
    counters_.add("dropped_queue_full");
  }
}

// static: alloc(inflight-map fill from the pooled queue; node storage
// recycles through the session NodePool)
void Broker::pump_queue(Session& session) noexcept {
  while (session.connected && !session.queued.empty() &&
         session.inflight.size() < cfg_.max_inflight_per_session) {
    QueuedOut q = std::move(session.queued.front());
    session.queued.pop_front();
    const std::uint16_t pid = alloc_packet_id(session);
    q.msg.packet_id = pid;
    auto [it, inserted] = session.inflight.emplace(
        pid, InflightOut{std::move(q.msg), std::move(q.wire)});
    assert(inserted);
    IFOT_AUDIT_ASSERT(inserted && pid != 0,
                      "allocated packet id must be fresh and nonzero");
    send_inflight(session, it->second);
  }
}

void Broker::send_inflight(Session& session,
                           InflightOut& inflight) noexcept {
  ++inflight.attempts;
  send_inflight_frame(session, inflight);
  counters_.add("delivered_qos12");
  arm_retry(session, inflight.msg.packet_id);
}

void Broker::send_inflight_frame(Session& session,
                                 InflightOut& inflight) noexcept {
  auto lit = links_.find(session.link);
  if (lit == links_.end()) return;
  if (!inflight.wire) {
    // Deliveries that reached the window without a fan-out group template
    // (retained replays) encode lazily, once; the template then serves
    // every retransmit of this message too.
    Publish wire_msg = inflight.msg;  // shares topic/payload buffers
    wire_msg.dup = false;
    inflight.wire = make_template(wire_msg);
  }
  IFOT_AUDIT_ASSERT(inflight.wire->has_packet_id(),
                    "QoS 1/2 inflight frame lost its packet-id field");
  send_template(*lit->second, inflight.wire, inflight.msg.packet_id,
                inflight.msg.dup);
}

// static: alloc(template-pool warm-up acquire; templates and their
// wire buffers recycle through WireTemplatePool in the steady state)
WireTemplateRef Broker::make_template(const Publish& wire_msg) noexcept {
  WireTemplateRef tpl = template_pool_.acquire();
  tpl->assign(wire_msg);
  counters_.add("fanout_encodes");
  counters_.add("egress_wire_templates");
  // The one remaining copy: topic + payload bytes into the wire buffer.
  counters_.add("payload_bytes_copied", wire_msg.payload.size());
  counters_.add("topic_bytes_copied", wire_msg.topic.size());
  return tpl;
}

void Broker::arm_retry(Session& session,
                       std::uint16_t packet_id) noexcept {
  auto it = session.inflight.find(packet_id);
  if (it == session.inflight.end()) return;
  it->second.next_retry_at =
      sched_.now() + cfg_.retry_interval;  // static: leaf(virtual Scheduler::now — clock reads never allocate or throw)
  arm_session_retry(session, it->second.next_retry_at);
}

// static: alloc(retry-timer closure hand-off to the scheduler; one
// timer per session, re-armed in place, so steady-state QoS 1/2
// traffic never takes the allocating branch)
void Broker::arm_session_retry(Session& session,
                               SimTime deadline) noexcept {
  // One timer per session, armed at the earliest pending deadline. A
  // timer already due at or before `deadline` covers it — the fire scan
  // re-arms for whatever remains. Moving the deadline re-arms the same
  // timer node in place (Scheduler::rearm keeps the stored closure), so
  // steady-state QoS 1/2 traffic never allocates a timer closure.
  if (session.retry_timer != 0 && session.retry_deadline <= deadline) return;
  const SimDuration delay =
      deadline -
      sched_.now();  // static: leaf(virtual Scheduler::now — clock reads never allocate or throw)
  std::uint64_t timer = 0;
  if (session.retry_timer != 0) {
    timer = sched_.rearm(session.retry_timer, delay);  // static: leaf(virtual Scheduler::rearm — O(1) relink of the existing timer node)
  }
  if (timer == 0) {
    if (session.retry_timer != 0) {
      sched_.cancel(session.retry_timer);  // static: leaf(virtual Scheduler::cancel — timer bookkeeping, proven per scheduler impl)
    }
    const SharedString cid = session.client_id;
    timer = sched_.call_after(  // static: leaf(virtual Scheduler::call_after — the simulator half is the event-queue boundary of the proof)
        delay, [this, cid] { on_retry_timer(cid.str()); });
  }
  session.retry_deadline = deadline;
  session.retry_timer = timer;
}

void Broker::on_retry_timer(const std::string& client_id) noexcept {
  auto sit = sessions_.find(client_id);
  if (sit == sessions_.end()) return;
  Session& s = *sit->second;
  // Keep retry_timer pointing at the firing node so the re-arm below can
  // revive it in place; the sentinel deadline stops arm_session_retry's
  // already-armed-earlier short-circuit from seeing the dying arming.
  s.retry_deadline = std::numeric_limits<SimTime>::max();
  const SimTime now =
      sched_.now();  // static: leaf(virtual Scheduler::now — clock reads never allocate or throw)
  SimTime next = 0;
  // pid-order scan: redeliver what is due, retire what exhausted its
  // retries, and find the earliest remaining deadline to re-arm at.
  for (auto& [pid, f] : s.inflight) {
    if (f.next_retry_at == 0) continue;
    if (f.attempts > cfg_.max_retries) {
      // Out of retries: keep the message for a future reconnect
      // redelivery (§4.4) but stop the timer churn for it.
      f.next_retry_at = 0;
      continue;
    }
    if (f.next_retry_at <= now && s.connected) {
      counters_.add("redeliveries");
      if (f.awaiting_pubcomp) {
        send_packet(s, Packet{Pubrel{pid}});
      } else {
        // Retransmit = patch DUP + id into the stored template; the
        // frame is never re-encoded.
        f.msg.dup = true;
        send_inflight_frame(s, f);
      }
      ++f.attempts;
      f.next_retry_at =
          f.attempts > cfg_.max_retries ? 0 : now + cfg_.retry_interval;
    }
    if (f.next_retry_at != 0 && (next == 0 || f.next_retry_at < next)) {
      next = f.next_retry_at;
    }
  }
  if (s.connected && next != 0) {
    arm_session_retry(s, next);
  } else {
    s.retry_timer = 0;
    s.retry_deadline = 0;
  }
  audit_invariants();
  flush_egress();
}

std::uint16_t Broker::alloc_packet_id(Session& session) noexcept {
  for (int i = 0; i < 65535; ++i) {
    const std::uint16_t pid = session.next_packet_id;
    session.next_packet_id =
        session.next_packet_id == 65535
            ? std::uint16_t{1}
            : static_cast<std::uint16_t>(session.next_packet_id + 1);
    if (session.inflight.find(pid) == session.inflight.end()) return pid;
  }
  return 0;  // window full; callers bound inflight first so unreachable
}

// static: alloc(Packet variant temp construction/destruction; the
// alternatives hold shared or recycled buffers)
void Broker::send_packet(Session& session, const Packet& p) noexcept {
  auto it = links_.find(session.link);
  if (it == links_.end()) return;
  send_packet(*it->second, p);
}

// static: alloc(Packet variant temp construction/destruction; the
// alternatives hold shared or recycled buffers)
void Broker::send_packet(Link& link, const Packet& p) noexcept {
  // Encode into a recycled frame buffer: steady-state acks/acks-of-acks
  // reuse capacity the outbox already paid for.
  Bytes wire = link.outbox->take_buffer();
  encode_into(p, wire);
  send_encoded(link, std::move(wire));
}

// static: alloc(dirty-link list growth via mark_egress_dirty; the
// list keeps its capacity across flush cycles)
void Broker::send_encoded(Link& link, Bytes wire) noexcept {
  counters_.add("packets_out");
  link.outbox->enqueue(std::move(wire));
  mark_egress_dirty(link);
}

// static: alloc(dirty-link list growth via mark_egress_dirty; the
// list keeps its capacity across flush cycles)
void Broker::send_template(Link& link, WireTemplateRef wire,
                           std::uint16_t packet_id, bool dup) noexcept {
  counters_.add("packets_out");
  link.outbox->enqueue(std::move(wire), packet_id, dup);
  mark_egress_dirty(link);
}

// static: alloc(dirty-link list growth; capacity is retained across
// flush cycles so the steady state appends in place)
void Broker::mark_egress_dirty(Link& link) {
  if (!link.egress_dirty) {
    link.egress_dirty = true;
    dirty_links_.push_back(link.id);
  }
}

void Broker::flush_egress() noexcept {
  // Index loop: a flush can synchronously feed a peer whose response
  // re-enters the broker and dirties more links (appended here). Dropped
  // links simply fail the lookup. A nested flush_egress drains the whole
  // vector and clears it; `i < size()` then ends the outer loop safely.
  for (std::size_t i = 0; i < dirty_links_.size(); ++i) {
    auto it = links_.find(dirty_links_[i]);
    if (it == links_.end()) continue;
    it->second->egress_dirty = false;
    it->second->outbox->flush();
  }
  dirty_links_.clear();
}

void Broker::arm_keepalive(Link& link) {
  Session& session = session_of(link);
  if (session.keep_alive_s == 0) {  // keep-alive disabled
    if (link.keepalive_timer != 0) {
      sched_.cancel(link.keepalive_timer);
      link.keepalive_timer = 0;
    }
    return;
  }
  // Grace period is 1.5x the keep-alive interval (§3.1.2.10).
  link.keepalive_wait = false;
  schedule_keepalive(
      link, from_seconds(static_cast<double>(session.keep_alive_s) * 1.5));
}

void Broker::schedule_keepalive(Link& link, SimDuration delay) noexcept {
  // One timer per link for the whole connection: each fire (and each
  // re-CONNECT) re-arms the same node in place; the closure is built
  // once, when the link first arms.
  std::uint64_t timer = 0;
  if (link.keepalive_timer != 0) {
    timer = sched_.rearm(link.keepalive_timer, delay);  // static: leaf(virtual Scheduler::rearm — O(1) relink of the existing timer node)
  }
  if (timer == 0) {
    if (link.keepalive_timer != 0) {
      sched_.cancel(link.keepalive_timer);  // static: leaf(virtual Scheduler::cancel — timer bookkeeping, proven per scheduler impl)
    }
    const LinkId id = link.id;
    timer = sched_.call_after(  // static: leaf(virtual Scheduler::call_after — the simulator half is the event-queue boundary of the proof)
        delay, [this, id] { on_keepalive_timer(id); });
  }
  link.keepalive_timer = timer;
}

void Broker::on_keepalive_timer(LinkId id) noexcept {
  auto it = links_.find(id);
  if (it == links_.end()) return;
  Link& l = *it->second;
  const Session& session = session_of(l);
  if (session.keep_alive_s == 0) {  // disabled since the timer was armed
    l.keepalive_timer = 0;
    return;
  }
  const SimDuration grace =
      from_seconds(static_cast<double>(session.keep_alive_s) * 1.5);
  if (!l.keepalive_wait) {
    // Probe phase: a full grace window elapsed — was the link quiet?
    const SimTime deadline = l.last_rx + grace;
    if (sched_.now() >= deadline) {
      l.keepalive_timer = 0;
      counters_.add("keepalive_timeouts");
      drop_link(l, /*publish_will=*/true);
      flush_egress();
      return;
    }
    // Traffic arrived: sleep until its own grace deadline, then roll a
    // fresh full window (the historical two-step cadence, preserved so
    // event traces are unchanged).
    l.keepalive_wait = true;
    schedule_keepalive(l, deadline - sched_.now());
  } else {
    l.keepalive_wait = false;
    schedule_keepalive(l, grace);
  }
}

void Broker::arm_sys_stats() {
  // Self-re-arming: the fire below revives its own timer node, so the
  // closure allocates once per broker, not once per interval.
  std::uint64_t timer = 0;
  if (sys_timer_ != 0) {
    timer = sched_.rearm(sys_timer_, cfg_.sys_interval);  // static: leaf(virtual Scheduler::rearm — O(1) relink of the existing timer node)
  }
  if (timer == 0) {
    timer = sched_.call_after(cfg_.sys_interval, [this] {
      publish_sys_stats();
      arm_sys_stats();
      flush_egress();
    });
  }
  sys_timer_ = timer;
}

void Broker::publish_sys_stats() {
  // Mosquitto-style $SYS topics; payloads are decimal strings. Retained
  // so late subscribers (the management software) see the latest values.
  // Routed directly (not via publish_local) so one stats tick coalesces
  // into a single batched write per watcher link.
  auto pub = [this](const std::string& topic, std::uint64_t value) {
    const std::string s = std::to_string(value);
    Publish p;
    p.topic = "$SYS/broker/" + topic;
    p.payload = Bytes(s.begin(), s.end());
    p.qos = QoS::kAtMostOnce;
    p.retain = true;
    route(std::move(p), "$broker");
  };
  pub("clients/connected", connected_count());
  pub("clients/total", session_count());
  pub("messages/received", counters_.get("packets_in"));
  pub("messages/sent", counters_.get("packets_out"));
  pub("publish/messages/routed", counters_.get("routed"));
  pub("publish/messages/dropped", counters_.get("dropped_queue_full"));
  pub("retained/count", retained_.size());
  pub("store/messages/queued", counters_.get("queued"));
  // Zero-copy fan-out health (ROADMAP: surface the fan-out counters):
  // encodes per routed group, and how many payload bytes were shared vs
  // copied into wire buffers.
  pub("publish/fanout/encodes", counters_.get("fanout_encodes"));
  pub("publish/fanout/bytes/shared", counters_.get("payload_bytes_shared"));
  pub("publish/fanout/bytes/copied", counters_.get("payload_bytes_copied"));
  // Topic strings ride the same sharing discipline as payload bytes
  // (ROADMAP: share topic strings across fan-out).
  pub("publish/fanout/topic_bytes/shared",
      counters_.get("topic_bytes_shared"));
  pub("publish/fanout/topic_bytes/copied",
      counters_.get("topic_bytes_copied"));
  // Bounded QoS 2 dedup pressure: evictions mean lost PUBRELs pushed a
  // session past its dedup capacity.
  pub("store/qos2/dedup/evictions", counters_.get("qos2_dedup_evictions"));
  pub("store/qos2/dedup/backlog", inbound_qos2_backlog());
  // Unified egress health: templates built, bytes that went out through
  // a shared frame instead of a per-subscriber encode, and how well
  // same-turn frames coalesce into single transport writes.
  pub("egress/wire_templates", counters_.get("egress_wire_templates"));
  pub("egress/template_bytes_shared",
      counters_.get("egress_template_bytes_shared"));
  pub("egress/batched_writes", counters_.get("egress_batched_writes"));
  pub("egress/frames_per_write",
      counters_.get("egress_frames") /
          std::max<std::uint64_t>(1, counters_.get("egress_writes")));
  // Ingress route cache health: steady-state publishes should be nearly
  // all hits; invalidations track subscription churn.
  pub("route/cache/hits", counters_.get("route_cache_hits"));
  pub("route/cache/misses", counters_.get("route_cache_misses"));
  pub("route/cache/invalidations", counters_.get("route_cache_invalidations"));
  pub("route/cache/revalidations", counters_.get("route_cache_revalidations"));
  pub("route/cache/evictions", counters_.get("route_cache_evictions"));
  pub("route/cache/entries", route_cache_.size());
  // Per-session memory footprint (ROADMAP million-sensor diet): live
  // counts × the statically audited type sizes (the same sizeof()s that
  // scripts/check_layout.sh budgets), plus the node pool's high-water
  // bytes — inflight/queue/subscription storage all draws from it.
  std::size_t inflight_nodes = 0;
  std::size_t queued_nodes = 0;
  for (const auto& [_, s] : sessions_) {
    inflight_nodes += s->inflight.size();
    queued_nodes += s->queued.size();
  }
  pub("memory/sessions_bytes_est", session_count() * sizeof(Session));
  pub("memory/inflight_nodes", inflight_nodes);
  pub("memory/queued_nodes", queued_nodes);
  pub("memory/pool_buckets_bytes", node_pool_.retained_bytes());
  // Federation health (DESIGN.md §4i): client publish ingress, bridge
  // traffic in/out, loop-rule drops, and the share of client publishes
  // that were shard-local — i.e. did not arrive over a bridge — as an
  // integer percentage (payloads are decimal strings).
  const std::uint64_t pubs_in = counters_.get("publishes_in");
  const std::uint64_t bridged_in =
      std::min(counters_.get("bridge_in"), pubs_in);
  pub("publish/messages/in", pubs_in);
  pub("federation/bridges", bridge_links_.size());
  pub("federation/bridge_in", counters_.get("bridge_in"));
  pub("federation/bridge_out", counters_.get("bridge_out"));
  pub("federation/loops_dropped", counters_.get("bridge_loops_dropped"));
  pub("federation/shard_local_ratio",
      pubs_in == 0 ? 100 : (pubs_in - bridged_in) * 100 / pubs_in);
  // Per-group shared-subscription health, aggregated across the group's
  // filters: $SYS/broker/share/<group>/{members,deliveries}.
  std::map<std::string_view, std::pair<std::uint64_t, std::uint64_t>>
      by_group;  // cold path: one aggregation per stats tick
  for (const auto& [key, sh] : shares_) {
    (void)key;
    auto& agg = by_group[sh.group.view()];
    agg.first += sh.members.size();
    agg.second += sh.deliveries;
  }
  for (const auto& [g, agg] : by_group) {
    const std::string base = "share/" + std::string(g);
    pub(base + "/members", agg.first);
    pub(base + "/deliveries", agg.second);
  }
}

void Broker::drop_link(Link& link, bool publish_will) {
  if (link.keepalive_timer != 0) sched_.cancel(link.keepalive_timer);
  std::unique_ptr<Will> will;
  if (!link.session.empty()) {
    auto sit = sessions_.find(link.session);
    if (sit != sessions_.end()) {
      Session& session = *sit->second;
      session.connected = false;
      session.link = 0;
      if (publish_will && session.will) will = std::move(session.will);
      if (session.retry_timer != 0) {
        sched_.cancel(session.retry_timer);
        session.retry_timer = 0;
        session.retry_deadline = 0;
      }
      if (session.clean) {
        purge_session_state(session);
        sessions_.erase(sit);
      }
    }
  }
  // Frames already queued on this link (e.g. a CONNACK reject) still go
  // out before the transport closes; protocol frames are never shed.
  link.outbox->flush();
  auto close = std::move(link.close);
  links_.erase(link.id);
  counters_.add("links_closed");
  if (close) close();
  if (will) {
    counters_.add("wills_published");
    Publish p;
    p.topic = will->topic;
    p.payload = std::move(will->payload);
    p.qos = will->qos;
    p.retain = will->retain;
    route(std::move(p), "$will");
  }
}

void Broker::audit_invariants() const {
  if constexpr (!audit::kEnabled) return;

  // Links and sessions must reference each other consistently.
  for (const auto& [id, link] : links_) {
    IFOT_AUDIT_ASSERT(link->id == id, "link map key diverged from link id");
    if (!link->session.empty()) {
      IFOT_AUDIT_ASSERT(
          sessions_.find(link->session) != sessions_.end(),
          "link bound to missing session '" + link->session.str() + "'");
    }
    IFOT_AUDIT_ASSERT(link->outbox != nullptr, "link without an outbox");
    link->outbox->audit_invariants();
    // A frame queued on a link must be tracked for the end-of-turn flush,
    // or it would sit in the outbox forever.
    IFOT_AUDIT_ASSERT(link->outbox->pending_frames() == 0 ||
                          link->egress_dirty,
                      "link holds queued frames but is not flush-tracked");
  }

  std::size_t subscription_total = 0;
  for (const auto& [cid, session] : sessions_) {
    IFOT_AUDIT_ASSERT(session->client_id == cid,
                      "session map key diverged from client id");
    if (session->connected) {
      auto lit = links_.find(session->link);
      IFOT_AUDIT_ASSERT(lit != links_.end(),
                        "connected session '" + cid + "' has no live link");
      IFOT_AUDIT_ASSERT(
          lit == links_.end() || lit->second->session == cid,
          "session '" + cid + "' points at a link owned by '" +
              (lit == links_.end() ? "" : lit->second->session.str()) + "'");
    }

    // Flow-control bounds hold after every mutation.
    IFOT_AUDIT_ASSERT(
        session->inflight.size() <= cfg_.max_inflight_per_session,
        "session '" + cid + "' exceeded the inflight window");
    IFOT_AUDIT_ASSERT(session->queued.size() <= cfg_.max_queued_per_session,
                      "session '" + cid + "' exceeded the offline queue bound");
    IFOT_AUDIT_ASSERT(
        session->inbound_qos2.size() <= cfg_.max_inbound_qos2_per_session,
        "session '" + cid + "' exceeded the QoS 2 dedup bound");

    // Outbound QoS 1/2 packet ids are unique by construction (map keys)
    // and must agree with the message they track.
    for (const auto& [pid, inflight] : session->inflight) {
      IFOT_AUDIT_ASSERT(pid != 0, "packet id 0 parked in inflight");
      IFOT_AUDIT_ASSERT(inflight.msg.packet_id == pid,
                        "inflight key diverged from message packet id");
      IFOT_AUDIT_ASSERT(inflight.msg.qos != QoS::kAtMostOnce,
                        "QoS 0 message parked in the inflight window");
      // A stored wire template must be patchable: it carries an id field
      // and its byte length matches the message it encodes.
      if (inflight.wire) {
        IFOT_AUDIT_ASSERT(inflight.wire->has_packet_id(),
                          "inflight wire template lacks a packet-id field");
        IFOT_AUDIT_ASSERT(
            inflight.wire->size() > 2 + inflight.msg.topic.size() +
                                        inflight.msg.payload.size(),
            "inflight wire template shorter than its topic + payload");
      }
    }

    // Bridge sessions keep their filters in bridge_links_, never in the
    // tree or the session's subscription table.
    IFOT_AUDIT_ASSERT(
        !session->is_bridge || session->subscriptions.size() == 0,
        "bridge session '" + cid + "' holds tree-backed subscriptions");
    IFOT_AUDIT_ASSERT(
        session->is_bridge ==
            (bridge_links_.find(std::string_view(cid)) != bridge_links_.end()),
        "bridge flag of '" + cid + "' diverged from the bridge registry");

    // Every plain subscription is mirrored in the tree; every share
    // subscription is mirrored as a group membership.
    for (const auto& [filter, granted] : session->subscriptions) {
      (void)granted;
      if (is_share_filter(filter.view())) {
        const auto shit = shares_.find(filter.view());
        IFOT_AUDIT_ASSERT(shit != shares_.end(),
                          "share subscription '" + filter.str() + "' of '" +
                              cid + "' has no group");
        bool member = false;
        if (shit != shares_.end()) {
          for (const auto& m : shit->second.members) {
            if (m.client_id == cid) member = true;
          }
        }
        IFOT_AUDIT_ASSERT(member, "session '" + cid +
                                      "' subscribed to '" + filter.str() +
                                      "' but is not a group member");
        continue;
      }
      ++subscription_total;
      IFOT_AUDIT_ASSERT(tree_.contains(filter, cid),
                        "subscription '" + filter.str() + "' of '" + cid +
                            "' missing from the topic tree");
    }
  }

  // ... and the tree holds nothing else (a takeover/teardown that forgets
  // erase_key would leak entries that keep routing to dead sessions).
  // Share groups contribute exactly one tree entry each.
  IFOT_AUDIT_ASSERT(tree_.entry_count() == subscription_total + shares_.size(),
                    "topic tree entry count diverged from session "
                    "subscriptions: tree holds " +
                        std::to_string(tree_.entry_count()) + ", sessions " +
                        std::to_string(subscription_total) + " plain + " +
                        std::to_string(shares_.size()) + " share groups");

  // Federation registries stay consistent with the session table.
  for (const auto& [cid, bl] : bridge_links_) {
    IFOT_AUDIT_ASSERT(bl.client_id == cid,
                      "bridge registry key diverged from its client id");
    const auto sit = sessions_.find(cid);
    IFOT_AUDIT_ASSERT(sit != sessions_.end() && sit->second->is_bridge,
                      "bridge link '" + cid + "' has no bridge session");
    for (const auto& [filter, granted] : bl.filters) {
      (void)granted;
      IFOT_AUDIT_ASSERT(valid_topic_filter(filter.view()),
                        "bridge '" + cid + "' holds invalid filter '" +
                            filter.str() + "'");
    }
  }
  for (const auto& [key, sh] : shares_) {
    const auto parsed = parse_share_filter(key);
    IFOT_AUDIT_ASSERT(parsed.ok(), "share registry key fails the grammar");
    IFOT_AUDIT_ASSERT(parsed.ok() && parsed.value().group == sh.group.view() &&
                          parsed.value().filter == sh.filter.view(),
                      "share group state diverged from its key");
    IFOT_AUDIT_ASSERT(!sh.members.empty(),
                      "empty share group '" + key + "' not torn down");
    IFOT_AUDIT_ASSERT(sh.members.empty() || sh.rr < sh.members.size(),
                      "share RR cursor out of range for '" + key + "'");
    IFOT_AUDIT_ASSERT(tree_.contains(sh.filter.view(), key),
                      "share group '" + key + "' missing from the tree");
    for (const auto& m : sh.members) {
      const auto sit = sessions_.find(m.client_id.view());
      IFOT_AUDIT_ASSERT(sit != sessions_.end(),
                        "share member of '" + key + "' has no session");
      IFOT_AUDIT_ASSERT(
          sit == sessions_.end() ||
              sit->second->subscriptions.find(key) != nullptr,
          "share member of '" + key + "' lost its subscription entry");
    }
  }

  retained_.audit_invariants();
  node_pool_.audit_invariants();
  template_pool_.audit_invariants();

  // Every current-version cached plan must re-derive byte-for-byte from
  // the live trie (local scratch: this audit must not disturb the
  // broker's route scratch).
  route_cache_.audit_invariants(
      tree_.version(),
      [this](std::string_view topic, RouteCache::Plan& out) {
        TopicTree<std::string, QoS>::MatchList matches;
        derive_plan(topic, matches, out);
      });
}

}  // namespace ifot::mqtt
