// Bounded, insertion-ordered packet-id set for inbound QoS 2 dedup.
//
// The exactly-once handshake parks a packet id between PUBLISH and
// PUBREL. When the PUBREL is lost for good (peer died, session reset on
// the other side), the id would stay parked forever and the set would
// grow without bound across a long-lived session. This set evicts the
// oldest id once a capacity is reached: by then the peer has stopped
// retrying that id, so eviction trades an unbounded leak for a bounded,
// counted worst case (a duplicate delivery if the peer does retry).
//
// Layout: two flat std::vector<uint16_t>s (one sorted for lookup, one in
// arrival order for eviction) instead of a std::set + std::deque. That
// shrinks the inline footprint from 144 to 64 bytes per session and
// replaces a per-insert tree-node allocation with an in-capacity insert;
// the vectors' capacity is bounded by the configured cap. Shifting
// uint16 elements on insert/erase is a short memmove — cheap next to the
// QoS 2 handshake that triggers it.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/audit.hpp"

namespace ifot::mqtt {

class BoundedIdSet {
 public:
  void set_capacity(std::size_t cap) {
    cap_ = std::max<std::size_t>(cap, 1);
    trim();
  }

  /// Returns true on first sight of `id` (the caller should deliver).
  bool insert(std::uint16_t id) {
    const auto it = std::lower_bound(sorted_.begin(), sorted_.end(), id);
    if (it != sorted_.end() && *it == id) return false;
    sorted_.insert(it, id);
    order_.push_back(id);
    trim();
    audit_consistent();
    return true;
  }

  void erase(std::uint16_t id) {
    const auto it = std::lower_bound(sorted_.begin(), sorted_.end(), id);
    if (it == sorted_.end() || *it != id) return;
    sorted_.erase(it);
    order_.erase(std::find(order_.begin(), order_.end(), id));
    audit_consistent();
  }

  [[nodiscard]] std::size_t size() const { return sorted_.size(); }
  [[nodiscard]] bool contains(std::uint16_t id) const {
    return std::binary_search(sorted_.begin(), sorted_.end(), id);
  }
  /// Ids discarded because the set was full (lost-PUBREL leak pressure).
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

 private:
  void trim() {
    while (sorted_.size() > cap_) {
      const std::uint16_t oldest = order_.front();
      order_.erase(order_.begin());
      const auto it =
          std::lower_bound(sorted_.begin(), sorted_.end(), oldest);
      sorted_.erase(it);
      ++evictions_;
    }
    audit_consistent();
  }

  /// The lookup set and the eviction order must describe the same ids,
  /// and the capacity bound must hold after every mutation.
  void audit_consistent() const {
    IFOT_AUDIT_ASSERT(sorted_.size() == order_.size(),
                      "BoundedIdSet set/order element counts diverged");
    IFOT_AUDIT_ASSERT(sorted_.size() <= cap_,
                      "BoundedIdSet exceeded its configured capacity");
    IFOT_AUDIT_ASSERT(std::is_sorted(sorted_.begin(), sorted_.end()),
                      "BoundedIdSet lookup vector lost its ordering");
  }

  std::vector<std::uint16_t> sorted_;  // binary-search lookup
  std::vector<std::uint16_t> order_;   // arrival order (eviction FIFO)
  std::size_t cap_ = 1024;
  std::uint64_t evictions_ = 0;
};

}  // namespace ifot::mqtt
