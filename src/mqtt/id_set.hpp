// Bounded, insertion-ordered packet-id set for inbound QoS 2 dedup.
//
// The exactly-once handshake parks a packet id between PUBLISH and
// PUBREL. When the PUBREL is lost for good (peer died, session reset on
// the other side), the id would stay parked forever and the set would
// grow without bound across a long-lived session. This set evicts the
// oldest id once a capacity is reached: by then the peer has stopped
// retrying that id, so eviction trades an unbounded leak for a bounded,
// counted worst case (a duplicate delivery if the peer does retry).
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <set>

#include "common/audit.hpp"

namespace ifot::mqtt {

class BoundedIdSet {
 public:
  void set_capacity(std::size_t cap) {
    cap_ = std::max<std::size_t>(cap, 1);
    trim();
  }

  /// Returns true on first sight of `id` (the caller should deliver).
  bool insert(std::uint16_t id) {
    if (!set_.insert(id).second) return false;
    order_.push_back(id);
    trim();
    audit_consistent();
    return true;
  }

  void erase(std::uint16_t id) {
    if (set_.erase(id) == 0) return;
    order_.erase(std::find(order_.begin(), order_.end(), id));
    audit_consistent();
  }

  [[nodiscard]] std::size_t size() const { return set_.size(); }
  [[nodiscard]] bool contains(std::uint16_t id) const {
    return set_.count(id) != 0;
  }
  /// Ids discarded because the set was full (lost-PUBREL leak pressure).
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

 private:
  void trim() {
    while (set_.size() > cap_) {
      set_.erase(order_.front());
      order_.pop_front();
      ++evictions_;
    }
    audit_consistent();
  }

  /// The lookup set and the eviction order must describe the same ids,
  /// and the capacity bound must hold after every mutation.
  void audit_consistent() const {
    IFOT_AUDIT_ASSERT(set_.size() == order_.size(),
                      "BoundedIdSet set/order element counts diverged");
    IFOT_AUDIT_ASSERT(set_.size() <= cap_,
                      "BoundedIdSet exceeded its configured capacity");
  }

  std::size_t cap_ = 1024;
  std::set<std::uint16_t> set_;
  std::deque<std::uint16_t> order_;
  std::uint64_t evictions_ = 0;
};

}  // namespace ifot::mqtt
