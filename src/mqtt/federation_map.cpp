#include "mqtt/federation_map.hpp"

#include <cstdint>

#include "common/audit.hpp"
#include "mqtt/topic.hpp"

namespace ifot::mqtt {

FederationMap::FederationMap(std::size_t broker_count)
    : broker_count_(broker_count == 0 ? 1 : broker_count) {
  audit_invariants();
}

Status FederationMap::assign(std::string_view prefix, std::size_t broker) {
  if (broker >= broker_count_) {
    return Err(Errc::kInvalidArgument, "federation: broker index out of range");
  }
  if (prefix.empty() || prefix.front() == '/' || prefix.back() == '/') {
    return Err(Errc::kInvalidArgument, "federation: malformed prefix");
  }
  for (const char c : prefix) {
    if (c == '+' || c == '#' || c == '\0') {
      return Err(Errc::kInvalidArgument,
                 "federation: prefix may not contain wildcards or NUL");
    }
  }
  for (auto& [p, owner] : assignments_) {
    if (p == prefix) {
      owner = broker;
      audit_invariants();
      return {};
    }
  }
  assignments_.emplace_back(std::string(prefix), broker);
  audit_invariants();
  return {};
}

bool FederationMap::prefix_matches(std::string_view prefix,
                                   std::string_view topic) noexcept {
  if (topic.size() < prefix.size()) return false;
  if (topic.substr(0, prefix.size()) != prefix) return false;
  // Level boundary: "city/north" owns "city/north" and "city/north/x",
  // never "city/northwest".
  return topic.size() == prefix.size() || topic[prefix.size()] == '/';
}

std::size_t FederationMap::shard_of(std::string_view topic) const noexcept {
  // A shared subscription balances one stream; its workers must resolve
  // the stream's shard, not a hash of the "$share/..." spelling.
  if (is_share_filter(topic)) {
    if (const auto parsed = parse_share_filter(topic)) {
      topic = parsed.value().filter;
    }
  }
  const std::pair<std::string, std::size_t>* best = nullptr;
  for (const auto& a : assignments_) {
    if (!prefix_matches(a.first, topic)) continue;
    if (best == nullptr || a.first.size() > best->first.size()) best = &a;
  }
  if (best != nullptr) return best->second;
  // Hash fallback: FNV-1a over the first three levels, byte-compatible
  // with NeuronModule::broker_index_for so unpinned topics place the
  // same with or without a federation map.
  std::size_t levels = 0;
  std::size_t end = topic.size();
  for (std::size_t i = 0; i < topic.size(); ++i) {
    if (topic[i] == '/') {
      if (++levels == 3) {
        end = i;
        break;
      }
    }
  }
  std::uint32_t h = 2166136261u;
  for (std::size_t i = 0; i < end; ++i) {
    h ^= static_cast<std::uint8_t>(topic[i]);
    h *= 16777619u;
  }
  return h % broker_count_;
}

bool FederationMap::pinned(std::string_view topic) const noexcept {
  if (is_share_filter(topic)) {
    if (const auto parsed = parse_share_filter(topic)) {
      topic = parsed.value().filter;
    }
  }
  for (const auto& a : assignments_) {
    if (prefix_matches(a.first, topic)) return true;
  }
  return false;
}

std::vector<std::string> FederationMap::filters_owned_by(
    std::size_t broker) const {
  // audit: exempt(read-only rendering of the assignment table)
  std::vector<std::string> out;
  for (const auto& [prefix, owner] : assignments_) {
    if (owner != broker) continue;
    out.push_back(prefix + "/#");
  }
  return out;
}

void FederationMap::audit_invariants() const {
  IFOT_AUDIT_ASSERT(broker_count_ >= 1, "federation map has no shards");
  for (std::size_t i = 0; i < assignments_.size(); ++i) {
    const auto& [prefix, owner] = assignments_[i];
    IFOT_AUDIT_ASSERT(owner < broker_count_,
                      "federation assignment owner out of range");
    IFOT_AUDIT_ASSERT(!prefix.empty() && prefix.front() != '/' &&
                          prefix.back() != '/',
                      "federation assignment prefix malformed");
    for (std::size_t j = i + 1; j < assignments_.size(); ++j) {
      IFOT_AUDIT_ASSERT(assignments_[j].first != prefix,
                        "duplicate federation prefix");
    }
  }
}

}  // namespace ifot::mqtt
