#include "mqtt/bridge.hpp"

#include <utility>

#include "common/audit.hpp"
#include "common/log.hpp"
#include "mqtt/topic.hpp"

namespace ifot::mqtt {
namespace {
constexpr const char* kLog = "mqtt.bridge";
constexpr std::string_view kSysPrefix = "$SYS/";

ClientConfig half_config(const BridgeConfig& cfg) {
  ClientConfig c;
  c.client_id = std::string(kBridgeClientPrefix) + cfg.name;
  c.clean_session = true;  // filters re-assert on every (re)connect
  c.keep_alive_s = cfg.keep_alive_s;
  return c;
}

}  // namespace

Bridge::Bridge(Scheduler& sched, BridgeConfig cfg, SendFn local_send,
               SendFn remote_send)
    : cfg_(std::move(cfg)),
      local_(sched, half_config(cfg_), std::move(local_send)),
      remote_(sched, half_config(cfg_), std::move(remote_send)) {
  // Each half re-asserts its filter scope on every CONNACK: sessions are
  // clean, so a broker restart or takeover starts from nothing.
  local_.set_on_connack([this](const Connack&) {
    subscribe_half(local_, cfg_.out_filters);
  });
  remote_.set_on_connack([this](const Connack&) {
    subscribe_half(remote_, cfg_.in_filters);
  });
  local_.set_on_message([this](const Publish& p) {
    relay(p, remote_, cfg_.local_label, "local_to_remote");
  });
  remote_.set_on_message([this](const Publish& p) {
    relay(p, local_, cfg_.remote_label, "remote_to_local");
  });
  audit_invariants();
}

void Bridge::local_transport_open() {
  local_.on_transport_open();
  audit_invariants();
}

void Bridge::local_data(BytesView data) {
  local_.on_data(data);
  audit_invariants();
}

void Bridge::local_transport_closed() {
  local_.on_transport_closed();
  audit_invariants();
}

void Bridge::remote_transport_open() {
  remote_.on_transport_open();
  audit_invariants();
}

void Bridge::remote_data(BytesView data) {
  remote_.on_data(data);
  audit_invariants();
}

void Bridge::remote_transport_closed() {
  remote_.on_transport_closed();
  audit_invariants();
}

// audit: exempt(subscription hand-off to the owned Client; bridge state
// is untouched and the client audits itself)
void Bridge::subscribe_half(Client& half,
                            const std::vector<TopicRequest>& filters) {
  if (filters.empty()) return;
  if (auto st = half.subscribe(filters); !st) {
    IFOT_LOG(kWarn, kLog) << cfg_.name << ": bridge subscribe failed: "
                          << st.error().to_string();
    counters_.add("subscribe_failures");
  }
}

void Bridge::relay(const Publish& p, Client& to,
                   const std::string& from_label, const char* counter) {
  // Brokers only send bridges wrapped publishes; anything else on this
  // session is protocol debris.
  const auto fed = parse_fed_topic(p.topic.view());
  if (!fed) {
    counters_.add("malformed_dropped");
    return;
  }
  const std::string_view inner = fed.value().inner;
  std::string topic;
  if (inner.substr(0, kFedPeerSysPrefix.size()) == kFedPeerSysPrefix) {
    // Already-remapped peer stats stop here: the full mesh hands every
    // broker its peers' vitals directly, and re-relaying would chain
    // "$SYS/federation/peer/B/federation/peer/A/..." remaps forever.
    counters_.add("peer_sys_dropped");
    return;
  }
  if (inner.substr(0, kSysPrefix.size()) == kSysPrefix) {
    // Mesh health: land the source broker's stats in a peer subtree at
    // the destination instead of colliding with its own $SYS namespace.
    topic_scratch_.clear();
    topic_scratch_.append(kFedPeerSysPrefix)
        .append(from_label)
        .push_back('/');
    topic_scratch_.append(inner.substr(kSysPrefix.size()));
    std::string remapped;
    write_fed_topic(remapped, fed.value().hops, topic_scratch_);
    topic = std::move(remapped);
  } else {
    topic = std::string(p.topic.view());  // forward the wrap verbatim
  }
  if (auto st = to.publish(std::move(topic), p.payload, p.qos, p.retain);
      !st) {
    counters_.add("relay_failures");
    return;
  }
  counters_.add(counter);
}

void Bridge::audit_invariants() const {
  if constexpr (!audit::kEnabled) return;
  IFOT_AUDIT_ASSERT(!cfg_.name.empty(), "bridge without a name");
  IFOT_AUDIT_ASSERT(!cfg_.local_label.empty() && !cfg_.remote_label.empty(),
                    "bridge '" + cfg_.name + "' missing a side label");
  IFOT_AUDIT_ASSERT(cfg_.local_label != cfg_.remote_label,
                    "bridge '" + cfg_.name + "' labels both sides the same");
  for (const auto& filters : {&cfg_.out_filters, &cfg_.in_filters}) {
    for (const auto& req : *filters) {
      IFOT_AUDIT_ASSERT(valid_topic_filter(req.filter),
                        "bridge '" + cfg_.name + "' configured with invalid "
                        "filter '" + req.filter + "'");
    }
  }
}

}  // namespace ifot::mqtt
