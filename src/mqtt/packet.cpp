#include "mqtt/packet.hpp"

#include <cassert>

namespace ifot::mqtt {
namespace {

constexpr std::uint8_t kProtocolLevel4 = 4;  // MQTT 3.1.1
constexpr std::uint8_t kProtocolLevel3 = 3;  // MQTT 3.1 ("MQIsdp")

// ---- fixed header ---------------------------------------------------------

// static: alloc(byte-buffer growth; encode buffers are pool-recycled)
void write_remaining_length(Bytes& out, std::size_t len) {
  assert(len <= kMaxRemainingLength);
  do {
    auto byte = static_cast<std::uint8_t>(len % 128);
    len /= 128;
    if (len > 0) byte |= 0x80;
    out.push_back(byte);
  } while (len > 0);
}

/// Result of parsing a fixed header from a buffer prefix.
struct FixedHeader {
  std::uint8_t type_and_flags = 0;
  std::size_t remaining_length = 0;
  std::size_t header_size = 0;  // bytes consumed by the fixed header
};

/// Parses the fixed header. Returns nullopt when more bytes are needed.
Result<std::optional<FixedHeader>> parse_fixed_header(BytesView data) {
  if (data.size() < 2) return std::optional<FixedHeader>{};
  FixedHeader h;
  h.type_and_flags = data[0];
  std::size_t len = 0;
  std::size_t multiplier = 1;
  std::size_t i = 1;
  for (;; ++i) {
    if (i >= data.size()) return std::optional<FixedHeader>{};
    if (i > 4) return Err(Errc::kProtocol, "remaining length exceeds 4 bytes");
    const std::uint8_t b = data[i];
    len += static_cast<std::size_t>(b & 0x7F) * multiplier;
    multiplier *= 128;
    if ((b & 0x80) == 0) break;
  }
  h.remaining_length = len;
  h.header_size = i + 1;
  return std::optional<FixedHeader>{h};
}

// ---- per-type body encoders ------------------------------------------------

Bytes body_of(const Connect& p) {
  Bytes body;
  BinaryWriter w(body);
  w.str16("MQTT");
  w.u8(kProtocolLevel4);
  std::uint8_t flags = 0;
  if (p.clean_session) flags |= 0x02;
  if (p.will) {
    flags |= 0x04;
    flags |= static_cast<std::uint8_t>(static_cast<std::uint8_t>(p.will->qos) << 3);
    if (p.will->retain) flags |= 0x20;
  }
  if (p.password) flags |= 0x40;
  if (p.username) flags |= 0x80;
  w.u8(flags);
  w.u16(p.keep_alive_s);
  w.str16(p.client_id);
  if (p.will) {
    w.str16(p.will->topic);
    w.u16(static_cast<std::uint16_t>(p.will->payload.size()));
    w.raw(p.will->payload);
  }
  if (p.username) w.str16(*p.username);
  if (p.password) w.str16(*p.password);
  return body;
}

Bytes body_of(const Connack& p) {
  Bytes body;
  BinaryWriter w(body);
  w.u8(p.session_present ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(p.code));
  return body;
}

std::uint8_t publish_flags(const Publish& p) {
  std::uint8_t f = 0;
  if (p.dup) f |= 0x08;
  f |= static_cast<std::uint8_t>(static_cast<std::uint8_t>(p.qos) << 1);
  if (p.retain) f |= 0x01;
  return f;
}

Bytes body_of_packet_id(std::uint16_t packet_id) {
  Bytes body;
  BinaryWriter w(body);
  w.u16(packet_id);
  return body;
}

Bytes body_of(const Subscribe& p) {
  Bytes body;
  BinaryWriter w(body);
  w.u16(p.packet_id);
  for (const auto& t : p.topics) {
    w.str16(t.filter);
    w.u8(static_cast<std::uint8_t>(t.qos));
  }
  return body;
}

Bytes body_of(const Suback& p) {
  Bytes body;
  BinaryWriter w(body);
  w.u16(p.packet_id);
  for (auto rc : p.return_codes) w.u8(rc);
  return body;
}

Bytes body_of(const Unsubscribe& p) {
  Bytes body;
  BinaryWriter w(body);
  w.u16(p.packet_id);
  for (const auto& t : p.topics) w.str16(t);
  return body;
}

// ---- per-type body decoders ------------------------------------------------

Result<QoS> decode_qos(std::uint8_t raw) {
  if (raw > 2) return Err(Errc::kProtocol, "invalid QoS value");
  return static_cast<QoS>(raw);
}

Result<Packet> decode_connect(BinaryReader& r) {
  auto proto = r.str16();
  if (!proto) return proto.error();
  if (proto.value() != "MQTT" && proto.value() != "MQIsdp") {
    return Err(Errc::kProtocol, "unknown protocol name: " + proto.value());
  }
  auto level = r.u8();
  if (!level) return level.error();
  if (level.value() != kProtocolLevel4 && level.value() != kProtocolLevel3) {
    return Err(Errc::kProtocol, "unsupported protocol level " +
                                    std::to_string(level.value()));
  }
  auto flags_r = r.u8();
  if (!flags_r) return flags_r.error();
  const std::uint8_t flags = flags_r.value();
  if ((flags & 0x01) != 0) {
    return Err(Errc::kProtocol, "CONNECT reserved flag set");
  }
  Connect c;
  c.clean_session = (flags & 0x02) != 0;
  auto ka = r.u16();
  if (!ka) return ka.error();
  c.keep_alive_s = ka.value();
  auto cid = r.str16();
  if (!cid) return cid.error();
  c.client_id = cid.value();
  if ((flags & 0x04) != 0) {
    Will will;
    auto qos = decode_qos(static_cast<std::uint8_t>((flags >> 3) & 0x03));
    if (!qos) return qos.error();
    will.qos = qos.value();
    will.retain = (flags & 0x20) != 0;
    auto topic = r.str16();
    if (!topic) return topic.error();
    will.topic = topic.value();
    auto len = r.u16();
    if (!len) return len.error();
    auto payload = r.raw(len.value());
    if (!payload) return payload.error();
    will.payload = std::move(payload).value();
    c.will = std::move(will);
  } else if ((flags & 0x38) != 0) {
    return Err(Errc::kProtocol, "will flags set without will flag");
  }
  if ((flags & 0x80) != 0) {
    auto u = r.str16();
    if (!u) return u.error();
    c.username = u.value();
  }
  if ((flags & 0x40) != 0) {
    if (!c.username) {
      return Err(Errc::kProtocol, "password without username");
    }
    auto pw = r.str16();
    if (!pw) return pw.error();
    c.password = pw.value();
  }
  return Packet{std::move(c)};
}

Result<Packet> decode_connack(BinaryReader& r) {
  auto ack_flags = r.u8();
  if (!ack_flags) return ack_flags.error();
  auto code = r.u8();
  if (!code) return code.error();
  if (code.value() > 5) return Err(Errc::kProtocol, "bad CONNACK code");
  return Packet{Connack{(ack_flags.value() & 1) != 0,
                        static_cast<ConnectCode>(code.value())}};
}

Result<Packet> decode_publish(std::uint8_t flags, BinaryReader& r) {
  Publish p;
  p.dup = (flags & 0x08) != 0;
  auto qos = decode_qos(static_cast<std::uint8_t>((flags >> 1) & 0x03));
  if (!qos) return qos.error();
  p.qos = qos.value();
  if (p.qos == QoS::kAtMostOnce && p.dup) {
    return Err(Errc::kProtocol, "DUP set on QoS 0 PUBLISH");  // [MQTT-3.3.1-2]
  }
  p.retain = (flags & 0x01) != 0;
  auto topic = r.str16();
  if (!topic) return topic.error();
  p.topic = topic.value();
  if (p.qos != QoS::kAtMostOnce) {
    auto pid = r.u16();
    if (!pid) return pid.error();
    if (pid.value() == 0) return Err(Errc::kProtocol, "packet id 0");
    p.packet_id = pid.value();
  }
  auto payload = r.raw(r.remaining());
  if (!payload) return payload.error();
  p.payload = std::move(payload).value();
  return Packet{std::move(p)};
}

/// Reads a packet identifier; zero is reserved in every packet that
/// carries one (§2.3.1).
Result<std::uint16_t> decode_packet_id(BinaryReader& r) {
  auto pid = r.u16();
  if (!pid) return pid.error();
  if (pid.value() == 0) return Err(Errc::kProtocol, "packet id 0");
  return pid.value();
}

template <typename T>
Result<Packet> decode_packet_id_only(BinaryReader& r) {
  auto pid = decode_packet_id(r);
  if (!pid) return pid.error();
  return Packet{T{pid.value()}};
}

Result<Packet> decode_subscribe(BinaryReader& r) {
  Subscribe s;
  auto pid = decode_packet_id(r);
  if (!pid) return pid.error();
  s.packet_id = pid.value();
  while (!r.at_end()) {
    auto filter = r.str16();
    if (!filter) return filter.error();
    auto q = r.u8();
    if (!q) return q.error();
    auto qos = decode_qos(q.value());
    if (!qos) return qos.error();
    s.topics.push_back({filter.value(), qos.value()});
  }
  if (s.topics.empty()) {
    return Err(Errc::kProtocol, "SUBSCRIBE with no topics");
  }
  return Packet{std::move(s)};
}

Result<Packet> decode_suback(BinaryReader& r) {
  Suback s;
  auto pid = decode_packet_id(r);
  if (!pid) return pid.error();
  s.packet_id = pid.value();
  while (!r.at_end()) {
    auto rc = r.u8();
    if (!rc) return rc.error();
    s.return_codes.push_back(rc.value());
  }
  return Packet{std::move(s)};
}

Result<Packet> decode_unsubscribe(BinaryReader& r) {
  Unsubscribe u;
  auto pid = decode_packet_id(r);
  if (!pid) return pid.error();
  u.packet_id = pid.value();
  while (!r.at_end()) {
    auto t = r.str16();
    if (!t) return t.error();
    u.topics.push_back(t.value());
  }
  if (u.topics.empty()) {
    return Err(Errc::kProtocol, "UNSUBSCRIBE with no topics");
  }
  return Packet{std::move(u)};
}

Result<Packet> decode_body(std::uint8_t type_and_flags, BytesView body) {
  const std::uint8_t type_bits = type_and_flags >> 4;
  if (type_bits == 0 || type_bits == 15) {
    return Err(Errc::kProtocol,
               "reserved packet type " + std::to_string(type_bits));
  }
  const auto type = static_cast<PacketType>(type_bits);
  const std::uint8_t flags = type_and_flags & 0x0F;
  BinaryReader r(body);

  // Flag validation per §2.2.2: PUBLISH carries flags; PUBREL, SUBSCRIBE
  // and UNSUBSCRIBE must use 0b0010; everything else 0b0000.
  const std::uint8_t expected_flags =
      (type == PacketType::kPubrel || type == PacketType::kSubscribe ||
       type == PacketType::kUnsubscribe)
          ? 0x02
          : 0x00;
  if (type != PacketType::kPublish && flags != expected_flags) {
    return Err(Errc::kProtocol, "invalid fixed-header flags");
  }

  // The dispatch returns directly instead of overwriting a default
  // error value: building that error's message allocated on every
  // successfully decoded packet (the ingress hot path).
  Result<Packet> out = [&]() -> Result<Packet> {
    switch (type) {
      case PacketType::kConnect: return decode_connect(r);
      case PacketType::kConnack: return decode_connack(r);
      case PacketType::kPublish: return decode_publish(flags, r);
      case PacketType::kPuback: return decode_packet_id_only<Puback>(r);
      case PacketType::kPubrec: return decode_packet_id_only<Pubrec>(r);
      case PacketType::kPubrel: return decode_packet_id_only<Pubrel>(r);
      case PacketType::kPubcomp: return decode_packet_id_only<Pubcomp>(r);
      case PacketType::kSubscribe: return decode_subscribe(r);
      case PacketType::kSuback: return decode_suback(r);
      case PacketType::kUnsubscribe: return decode_unsubscribe(r);
      case PacketType::kUnsuback: return decode_packet_id_only<Unsuback>(r);
      case PacketType::kPingreq: return Packet{Pingreq{}};
      case PacketType::kPingresp: return Packet{Pingresp{}};
      case PacketType::kDisconnect: return Packet{Disconnect{}};
    }
    return Err(Errc::kProtocol, "unknown packet type");
  }();
  if (!out) return out;
  if (!r.at_end()) {
    return Err(Errc::kProtocol, "trailing bytes in packet body");
  }
  return out;
}

std::uint8_t header_flags(const Packet& p) {
  if (const auto* pub = std::get_if<Publish>(&p)) return publish_flags(*pub);
  const auto t = packet_type(p);
  if (t == PacketType::kPubrel || t == PacketType::kSubscribe ||
      t == PacketType::kUnsubscribe) {
    return 0x02;
  }
  return 0x00;
}

}  // namespace

PacketType packet_type(const Packet& p) {
  return static_cast<PacketType>(p.index() + 1);
}

const char* packet_type_name(PacketType t) {
  switch (t) {
    case PacketType::kConnect: return "CONNECT";
    case PacketType::kConnack: return "CONNACK";
    case PacketType::kPublish: return "PUBLISH";
    case PacketType::kPuback: return "PUBACK";
    case PacketType::kPubrec: return "PUBREC";
    case PacketType::kPubrel: return "PUBREL";
    case PacketType::kPubcomp: return "PUBCOMP";
    case PacketType::kSubscribe: return "SUBSCRIBE";
    case PacketType::kSuback: return "SUBACK";
    case PacketType::kUnsubscribe: return "UNSUBSCRIBE";
    case PacketType::kUnsuback: return "UNSUBACK";
    case PacketType::kPingreq: return "PINGREQ";
    case PacketType::kPingresp: return "PINGRESP";
    case PacketType::kDisconnect: return "DISCONNECT";
  }
  return "?";
}

EncodedPublish encode_publish_template(const Publish& p) {
  EncodedPublish out;
  encode_publish_template_into(p, out);
  return out;
}

void encode_publish_template_into(const Publish& p,
                                  EncodedPublish& out) noexcept {
  const std::size_t body_len = 2 + p.topic.size() +
                               (p.qos != QoS::kAtMostOnce ? 2 : 0) +
                               p.payload.size();
  std::size_t rl_len = 1;
  for (std::size_t v = body_len; v >= 128; v /= 128) ++rl_len;
  out.wire.clear();
  out.packet_id_offset = 0;
  out.wire.reserve(1 + rl_len + body_len);
  out.wire.push_back(static_cast<std::uint8_t>(
      (static_cast<std::uint8_t>(PacketType::kPublish) << 4) |
      publish_flags(p)));
  write_remaining_length(out.wire, body_len);
  BinaryWriter w(out.wire);
  w.str16(p.topic);
  if (p.qos != QoS::kAtMostOnce) {
    out.packet_id_offset = out.wire.size();
    w.u16(p.packet_id);
  }
  w.raw(p.payload);
}

Bytes encode(const Packet& p) {
  Bytes out;
  encode_into(p, out);
  return out;
}

void encode_into(const Packet& p, Bytes& out) noexcept {
  out.clear();
  if (const auto* pub = std::get_if<Publish>(&p)) {
    // Reuse the caller's buffer through the template encoder (the id
    // offset is computed and discarded; encode_into callers only want
    // the frame bytes).
    EncodedPublish enc;
    enc.wire = std::move(out);
    encode_publish_template_into(*pub, enc);
    out = std::move(enc.wire);
    return;
  }
  const auto type = packet_type(p);
  // Fixed-size packets — the egress hot path (acks, QoS 2 handshake,
  // keep-alive) — write straight into `out`: no body buffer, no copy.
  switch (type) {
    case PacketType::kPuback:
    case PacketType::kPubrec:
    case PacketType::kPubrel:
    case PacketType::kPubcomp:
    case PacketType::kUnsuback: {
      const std::uint16_t pid = std::visit(
          [](const auto& pkt) -> std::uint16_t {
            using T = std::decay_t<decltype(pkt)>;
            if constexpr (std::is_same_v<T, Puback> ||
                          std::is_same_v<T, Pubrec> ||
                          std::is_same_v<T, Pubrel> ||
                          std::is_same_v<T, Pubcomp> ||
                          std::is_same_v<T, Unsuback>) {
              return pkt.packet_id;
            } else {
              return 0;  // unreachable: dispatched by type above
            }
          },
          p);
      out.reserve(4);
      out.push_back(static_cast<std::uint8_t>(
          (static_cast<std::uint8_t>(type) << 4) | header_flags(p)));
      out.push_back(2);
      out.push_back(static_cast<std::uint8_t>(pid >> 8));
      out.push_back(static_cast<std::uint8_t>(pid & 0xFF));
      return;
    }
    case PacketType::kConnack: {
      const auto& c = std::get<Connack>(p);
      out.reserve(4);
      out.push_back(static_cast<std::uint8_t>(
          (static_cast<std::uint8_t>(type) << 4) | header_flags(p)));
      out.push_back(2);
      out.push_back(c.session_present ? 1 : 0);
      out.push_back(static_cast<std::uint8_t>(c.code));
      return;
    }
    case PacketType::kPingreq:
    case PacketType::kPingresp:
    case PacketType::kDisconnect:
      out.reserve(2);
      out.push_back(static_cast<std::uint8_t>(
          (static_cast<std::uint8_t>(type) << 4) | header_flags(p)));
      out.push_back(0);
      return;
    default:
      break;
  }
  // Variable-size cold path (CONNECT, SUBSCRIBE/SUBACK, UNSUBSCRIBE):
  // build the body separately, then assemble.
  Bytes body = std::visit(
      [](const auto& pkt) -> Bytes {
        using T = std::decay_t<decltype(pkt)>;
        if constexpr (std::is_same_v<T, Publish>) {
          return Bytes{};  // unreachable: encode() dispatches PUBLISH above
        } else if constexpr (std::is_same_v<T, Puback> ||
                      std::is_same_v<T, Pubrec> ||
                      std::is_same_v<T, Pubrel> || std::is_same_v<T, Pubcomp> ||
                      std::is_same_v<T, Unsuback>) {
          return body_of_packet_id(pkt.packet_id);
        } else if constexpr (std::is_same_v<T, Pingreq> ||
                             std::is_same_v<T, Pingresp> ||
                             std::is_same_v<T, Disconnect>) {
          return {};
        } else {
          return body_of(pkt);
        }
      },
      p);
  out.push_back(static_cast<std::uint8_t>(
      (static_cast<std::uint8_t>(packet_type(p)) << 4) | header_flags(p)));
  write_remaining_length(out, body.size());
  out.insert(out.end(), body.begin(), body.end());
}

Result<Packet> decode(BytesView data) {
  auto header = parse_fixed_header(data);
  if (!header) return header.error();
  if (!header.value()) return Err(Errc::kParse, "incomplete fixed header");
  const FixedHeader h = *header.value();
  const std::size_t total = h.header_size + h.remaining_length;
  if (data.size() < total) {
    // The declared remaining length runs past the supplied buffer; a
    // lenient decoder would truncate the body here, which is exactly how
    // hostile length fields smuggle short reads.
    return Err(Errc::kParse,
               "truncated packet: header declares " +
                   std::to_string(h.remaining_length) + " body bytes, " +
                   std::to_string(data.size() - h.header_size) + " supplied");
  }
  if (data.size() > total) {
    return Err(Errc::kProtocol, "trailing bytes after packet");
  }
  return decode_body(h.type_and_flags,
                     data.subspan(h.header_size, h.remaining_length));
}

void StreamDecoder::feed(BytesView data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

Result<std::optional<Packet>> StreamDecoder::next() {
  auto header = parse_fixed_header(BytesView(buf_));
  if (!header) return header.error();
  if (!header.value()) return std::optional<Packet>{};
  const FixedHeader h = *header.value();
  const std::size_t total = h.header_size + h.remaining_length;
  if (total > max_packet_) {
    // Fail fast: waiting for a deliberately huge declared body would pin
    // buffer memory for as long as the peer cares to dribble bytes.
    return Err(Errc::kCapacity,
               "declared packet size " + std::to_string(total) +
                   " exceeds the " + std::to_string(max_packet_) +
                   "-byte limit");
  }
  if (buf_.size() < total) return std::optional<Packet>{};
  auto packet = decode_body(
      h.type_and_flags, BytesView(buf_).subspan(h.header_size, h.remaining_length));
  buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(total));
  if (!packet) return packet.error();
  return std::optional<Packet>{std::move(packet).value()};
}

}  // namespace ifot::mqtt
