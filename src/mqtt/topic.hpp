// MQTT topic names, topic filters and the broker's subscription tree.
//
// Implements the MQTT 3.1.1 §4.7 matching rules:
//  * '/' separates levels; levels may be empty;
//  * '+' matches exactly one level; '#' matches any suffix and must be the
//    final level;
//  * filters starting with '+'/'#' do not match topics starting with '$'.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ifot::mqtt {

/// True when `topic` is a valid topic *name* (no wildcards, non-empty).
bool valid_topic_name(std::string_view topic);

/// True when `filter` is a valid topic *filter* (wildcards allowed).
bool valid_topic_filter(std::string_view filter);

/// True when `filter` matches `topic` under §4.7 rules.
bool topic_matches(std::string_view filter, std::string_view topic);

/// Subscription tree: maps topic filters to subscriber values of type V,
/// supporting wildcard-aware lookup of all subscribers matching a topic
/// name. V is a small value (e.g. session index); one value per
/// (filter, key) pair where key disambiguates subscribers.
template <typename K, typename V>
class TopicTree {
 public:
  /// Inserts or replaces the value for (filter, key).
  void insert(std::string_view filter, const K& key, V value) {
    Node* node = &root_;
    for (const auto& level : levels(filter)) {
      auto& child = node->children[level];
      if (!child) child = std::make_unique<Node>();
      node = child.get();
    }
    node->entries[key] = std::move(value);
    ++version_;
  }

  /// Removes the entry for (filter, key); returns true when it existed.
  bool erase(std::string_view filter, const K& key) {
    Node* node = &root_;
    for (const auto& level : levels(filter)) {
      auto it = node->children.find(level);
      if (it == node->children.end()) return false;
      node = it->second.get();
    }
    const bool erased = node->entries.erase(key) > 0;
    if (erased) ++version_;
    return erased;
  }

  /// Removes every filter entry with the given key (session teardown).
  void erase_key(const K& key) {
    erase_key_rec(root_, key);
    ++version_;
  }

  /// Collects all (key, value) pairs whose filter matches `topic`.
  /// A subscriber matching via several filters appears once per filter
  /// (the broker deduplicates by key, keeping max QoS).
  void match(std::string_view topic,
             std::vector<std::pair<K, V>>& out) const {
    const auto lv = levels(topic);
    const bool dollar = !topic.empty() && topic.front() == '$';
    match_rec(root_, lv, 0, dollar, out);
  }

  [[nodiscard]] std::uint64_t version() const { return version_; }

  /// True when an entry exists for exactly (filter, key). Exact-filter
  /// lookup, no wildcard expansion (invariant audits and tests).
  [[nodiscard]] bool contains(std::string_view filter, const K& key) const {
    const Node* node = &root_;
    for (const auto& level : levels(filter)) {
      auto it = node->children.find(level);
      if (it == node->children.end()) return false;
      node = it->second.get();
    }
    return node->entries.find(key) != node->entries.end();
  }

  /// Total number of (filter, key) entries in the tree.
  [[nodiscard]] std::size_t entry_count() const {
    return entry_count_rec(root_);
  }

 private:
  struct Node {
    std::unordered_map<std::string, std::unique_ptr<Node>> children;
    std::unordered_map<K, V> entries;
  };

  static std::vector<std::string> levels(std::string_view s) {
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
      if (i == s.size() || s[i] == '/') {
        out.emplace_back(s.substr(start, i - start));
        start = i + 1;
      }
    }
    return out;
  }

  static void collect(const Node& node, std::vector<std::pair<K, V>>& out) {
    for (const auto& [k, v] : node.entries) out.emplace_back(k, v);
  }

  static std::size_t entry_count_rec(const Node& node) {
    std::size_t n = node.entries.size();
    for (const auto& [_, child] : node.children) {
      n += entry_count_rec(*child);
    }
    return n;
  }

  static void erase_key_rec(Node& node, const K& key) {
    node.entries.erase(key);
    for (auto& [_, child] : node.children) erase_key_rec(*child, key);
  }

  static void match_rec(const Node& node,
                        const std::vector<std::string>& topic,
                        std::size_t depth, bool dollar_topic,
                        std::vector<std::pair<K, V>>& out) {
    // '#' at this level matches the remainder (including zero levels),
    // but never a $-topic at the root.
    if (auto it = node.children.find("#"); it != node.children.end()) {
      if (!(depth == 0 && dollar_topic)) collect(*it->second, out);
    }
    if (depth == topic.size()) {
      collect(node, out);
      return;
    }
    const std::string& level = topic[depth];
    if (auto it = node.children.find(level); it != node.children.end()) {
      match_rec(*it->second, topic, depth + 1, dollar_topic, out);
    }
    if (auto it = node.children.find("+"); it != node.children.end()) {
      if (!(depth == 0 && dollar_topic)) {
        match_rec(*it->second, topic, depth + 1, dollar_topic, out);
      }
    }
  }

  Node root_;
  std::uint64_t version_ = 0;
};

}  // namespace ifot::mqtt
