// MQTT topic names, topic filters and the broker's subscription tree.
//
// Implements the MQTT 3.1.1 §4.7 matching rules:
//  * '/' separates levels; levels may be empty;
//  * '+' matches exactly one level; '#' matches any suffix and must be the
//    final level;
//  * filters starting with '+'/'#' do not match topics starting with '$'.
//
// The tree is the broker's per-publish hot path, so lookups are
// allocation-free in the steady state: topic/filter levels split into
// std::string_view slices over the caller's buffer (reusing a scratch
// vector), child maps use a transparent hash so a view never needs a
// temporary std::string key, and match() reports pointers to the stored
// subscriber keys instead of copying them. The tree also carries a
// version counter — bumped exactly when the set of (filter, key) entries
// changes — that the broker's route cache validates plans against, and
// prunes nodes left empty by erase/erase_key so subscribe/unsubscribe
// churn cannot grow the trie without bound.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.hpp"

namespace ifot::mqtt {

/// Maximum number of '/'-separated levels a valid topic name or filter may
/// have. MQTT 3.1.1 imposes no cap, but the matcher and the retained-store
/// walk recurse one frame per level, and the static bounded-stack proof
/// (scripts/ifot_callgraph.py) needs a hard bound — validation enforces it
/// so the recurse-depth annotations on the tree walks are honest.
inline constexpr std::size_t kMaxTopicLevels = 64;

/// True when `topic` is a valid topic *name* (no wildcards, non-empty,
/// at most kMaxTopicLevels levels).
bool valid_topic_name(std::string_view topic);

/// True when `filter` is a valid topic *filter* (wildcards allowed, at
/// most kMaxTopicLevels levels).
bool valid_topic_filter(std::string_view filter);

/// True when `filter` matches `topic` under §4.7 rules.
bool topic_matches(std::string_view filter, std::string_view topic);

// ---- federation namespaces -------------------------------------------------
//
// Three reserved $-prefixed namespaces carry the broker-federation
// control plane (DESIGN.md §4i). They live beside the matching rules
// because every one of them is a *grammar*: the broker must judge a
// SUBSCRIBE/PUBLISH against them before the generic filter/name rules
// apply, and malformed shapes get typed errors instead of silent
// misrouting.

/// Shared-subscription filter namespace: "$share/<group>/<filter>".
inline constexpr std::string_view kSharePrefix = "$share/";
/// Bridge wire-wrap namespace: "$fed/<hops>/<topic>".
inline constexpr std::string_view kFedPrefix = "$fed/";
/// Client-id prefix that marks a session as a federation bridge.
inline constexpr std::string_view kBridgeClientPrefix = "$bridge/";
/// Remote-broker $SYS subtree a bridge remaps peer stats into:
/// "$SYS/federation/peer/<peer>/...".
inline constexpr std::string_view kFedPeerSysPrefix = "$SYS/federation/peer/";

/// A parsed "$share/<group>/<filter>" subscription. Views alias the
/// input buffer.
struct ShareFilter {
  std::string_view group;   ///< load-balancing group name (no wildcards)
  std::string_view filter;  ///< inner topic filter (§4.7 rules apply)
};

/// True when `filter` claims the shared-subscription namespace (i.e. the
/// share grammar must judge it — "$share" alone or any "$share/..." —
/// regardless of whether it parses).
bool is_share_filter(std::string_view filter);

/// Parses "$share/<group>/<filter>". Typed errors (all Errc::kProtocol):
/// bare "$share" / missing group, empty group, wildcard ('+'/'#') or
/// NUL in the group segment, missing or invalid inner filter.
Result<ShareFilter> parse_share_filter(std::string_view filter);

/// A parsed bridge-wrapped topic "$fed/<hops>/<topic>". The hop count
/// rides the wire so loop prevention survives multi-broker relays.
struct FedTopic {
  std::uint32_t hops = 0;    ///< bridge links crossed so far (>= 1)
  std::string_view inner;    ///< original topic name (view into input)
};

/// True when `topic` claims the bridge-wrap namespace.
bool is_fed_topic(std::string_view topic);

/// Parses "$fed/<hops>/<topic>". Typed errors (all Errc::kProtocol):
/// missing/non-decimal/zero/overlong hop level, missing or invalid
/// inner topic name.
Result<FedTopic> parse_fed_topic(std::string_view topic);

/// Renders "$fed/<hops>/<inner>" into `out` (cleared first). Callers on
/// the forwarding hot path reuse one scratch string so the steady state
/// stays allocation-free.
void write_fed_topic(std::string& out, std::uint32_t hops,
                     std::string_view inner);

/// Subscription tree: maps topic filters to subscriber values of type V,
/// supporting wildcard-aware lookup of all subscribers matching a topic
/// name. V is a small value (e.g. session index); one value per
/// (filter, key) pair where key disambiguates subscribers.
template <typename K, typename V>
class TopicTree {
 public:
  /// One match result: the stored subscriber key (a pointer into the
  /// tree, stable until that entry is erased) plus its value. Pointers
  /// keep match() allocation-free — no key is copied out.
  using Match = std::pair<const K*, V>;
  using MatchList = std::vector<Match>;

  /// Inserts or replaces the value for (filter, key).
  void insert(std::string_view filter, const K& key, V value) {
    Node* node = &root_;
    split_levels(filter, levels_scratch_);
    for (const std::string_view level : levels_scratch_) {
      auto it = node->children.find(level);
      if (it == node->children.end()) {
        it = node->children
                 .emplace(std::string(level), std::make_unique<Node>())
                 .first;
      }
      node = it->second.get();
    }
    node->entries[key] = std::move(value);
    ++version_;
  }

  /// Removes the entry for (filter, key); returns true when it existed.
  /// Nodes left without entries or children are pruned on the way out.
  bool erase(std::string_view filter, const K& key) {
    split_levels(filter, levels_scratch_);
    path_scratch_.clear();
    Node* node = &root_;
    for (const std::string_view level : levels_scratch_) {
      auto it = node->children.find(level);
      if (it == node->children.end()) return false;
      path_scratch_.emplace_back(node, it);
      node = it->second.get();
    }
    const bool erased = node->entries.erase(key) > 0;
    if (erased) {
      prune_path();
      ++version_;
    }
    return erased;
  }

  /// Removes every filter entry with the given key (session teardown),
  /// pruning nodes left empty. Returns true when at least one entry was
  /// removed; the version is bumped only in that case, so tearing down a
  /// session that never subscribed cannot spuriously invalidate cached
  /// routes.
  bool erase_key(const K& key) {
    const bool erased = erase_key_rec(root_, key);
    if (erased) ++version_;
    return erased;
  }

  /// Collects all (key, value) pairs whose filter matches `topic`.
  /// A subscriber matching via several filters appears once per filter
  /// (the broker deduplicates by key, keeping max QoS). Steady-state
  /// allocation-free: once the level scratch and `out` have grown to
  /// their working capacity, no heap allocation happens per call.
  void match(std::string_view topic, MatchList& out) const noexcept {
    split_levels(topic, levels_scratch_);
    const bool dollar = !topic.empty() && topic.front() == '$';
    match_rec(root_, levels_scratch_, 0, dollar, out);
  }

  /// Monotonic count of entry-set mutations (insert / successful erase /
  /// successful erase_key). Cached match results are valid exactly while
  /// the version they were computed at is still current.
  [[nodiscard]] std::uint64_t version() const { return version_; }

  /// True when an entry exists for exactly (filter, key). Exact-filter
  /// lookup, no wildcard expansion (invariant audits and tests).
  [[nodiscard]] bool contains(std::string_view filter, const K& key) const {
    const Node* node = &root_;
    split_levels(filter, levels_scratch_);
    for (const std::string_view level : levels_scratch_) {
      auto it = node->children.find(level);
      if (it == node->children.end()) return false;
      node = it->second.get();
    }
    return node->entries.find(key) != node->entries.end();
  }

  /// Total number of (filter, key) entries in the tree.
  [[nodiscard]] std::size_t entry_count() const {
    return entry_count_rec(root_);
  }

  /// Number of trie nodes below the root. With pruning this returns to
  /// baseline after subscribe/unsubscribe churn (regression-tested).
  [[nodiscard]] std::size_t node_count() const {
    return node_count_rec(root_);
  }

 private:
  /// Transparent hash so child lookups take string_views (and literals)
  /// without constructing temporary std::string keys.
  struct LevelHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  struct Node {
    using ChildMap = std::unordered_map<std::string, std::unique_ptr<Node>,
                                        LevelHash, std::equal_to<>>;
    ChildMap children;
    std::unordered_map<K, V> entries;
  };

  /// Splits into views over `s` (valid only while `s` is), reusing the
  /// scratch vector's capacity.
  // static: alloc(level-scratch growth; the scratch vector keeps its
  // capacity across calls so the steady state never grows)
  static void split_levels(std::string_view s,
                           std::vector<std::string_view>& out) noexcept {
    out.clear();
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
      if (i == s.size() || s[i] == '/') {
        out.push_back(s.substr(start, i - start));
        start = i + 1;
      }
    }
  }

  // static: alloc(match-list growth; callers reuse one MatchList scratch
  // so the steady state appends into retained capacity)
  static void collect(const Node& node, MatchList& out) noexcept {
    for (const auto& [k, v] : node.entries) out.emplace_back(&k, v);
  }

  static std::size_t entry_count_rec(const Node& node) {
    std::size_t n = node.entries.size();
    for (const auto& [_, child] : node.children) {
      n += entry_count_rec(*child);
    }
    return n;
  }

  static std::size_t node_count_rec(const Node& node) {
    std::size_t n = node.children.size();
    for (const auto& [_, child] : node.children) {
      n += node_count_rec(*child);
    }
    return n;
  }

  static bool erase_key_rec(Node& node, const K& key) {
    bool erased = node.entries.erase(key) > 0;
    for (auto it = node.children.begin(); it != node.children.end();) {
      if (erase_key_rec(*it->second, key)) erased = true;
      if (it->second->entries.empty() && it->second->children.empty()) {
        it = node.children.erase(it);
      } else {
        ++it;
      }
    }
    return erased;
  }

  /// Walks the recorded erase() path deepest-first, removing nodes left
  /// with no entries and no children; stops at the first live node.
  void prune_path() {
    for (std::size_t i = path_scratch_.size(); i-- > 0;) {
      auto& [parent, it] = path_scratch_[i];
      const Node& child = *it->second;
      if (!child.entries.empty() || !child.children.empty()) break;
      parent->children.erase(it);
    }
  }

  // static: recurse(65, one frame per topic level, and validation caps
  // topics at kMaxTopicLevels = 64 levels)
  static void match_rec(const Node& node,
                        const std::vector<std::string_view>& topic,
                        std::size_t depth, bool dollar_topic,
                        MatchList& out) noexcept {
    // '#' at this level matches the remainder (including zero levels),
    // but never a $-topic at the root.
    if (auto it = node.children.find(std::string_view("#"));
        it != node.children.end()) {
      if (!(depth == 0 && dollar_topic)) collect(*it->second, out);
    }
    if (depth == topic.size()) {
      collect(node, out);
      return;
    }
    if (auto it = node.children.find(topic[depth]);
        it != node.children.end()) {
      match_rec(*it->second, topic, depth + 1, dollar_topic, out);
    }
    if (auto it = node.children.find(std::string_view("+"));
        it != node.children.end()) {
      if (!(depth == 0 && dollar_topic)) {
        match_rec(*it->second, topic, depth + 1, dollar_topic, out);
      }
    }
  }

  Node root_;
  std::uint64_t version_ = 0;
  // Reused per-call scratch (the level views and the erase path); makes
  // steady-state lookups allocation-free. Mutable so const lookups
  // (match/contains) can reuse it too; the tree is not thread-safe.
  mutable std::vector<std::string_view> levels_scratch_;
  std::vector<std::pair<Node*, typename Node::ChildMap::iterator>>
      path_scratch_;
};

}  // namespace ifot::mqtt
