#include "mqtt/outbox.hpp"

#include <utility>

#include "common/audit.hpp"

namespace ifot::mqtt {

const Bytes& WireTemplate::patched(std::uint16_t packet_id,
                                   bool dup) noexcept {
  IFOT_AUDIT_ASSERT(has_packet_id() || (packet_id == 0 && !dup),
                    "patched a QoS 0 template with an id or DUP");
  IFOT_AUDIT_ASSERT(!has_packet_id() || packet_id != 0,
                    "QoS 1/2 template patched with packet id 0");
  if (has_packet_id()) {
    enc_.wire[enc_.packet_id_offset] =
        static_cast<std::uint8_t>(packet_id >> 8);
    enc_.wire[enc_.packet_id_offset + 1] =
        static_cast<std::uint8_t>(packet_id & 0xFF);
    enc_.wire[0] = static_cast<std::uint8_t>(
        (enc_.wire[0] & ~0x08) | (dup ? 0x08 : 0x00));
    last_id_ = packet_id;
  }
  return enc_.wire;
}

void Outbox::enqueue(Bytes frame) noexcept {
  make_room(frame.size());
  pending_bytes_ += frame.size();
  Entry e;
  e.owned = std::move(frame);
  entries_.push_back(std::move(e));
  audit_invariants();
}

void Outbox::enqueue(WireTemplateRef tpl, std::uint16_t packet_id,
                     bool dup) noexcept {
  IFOT_AUDIT_ASSERT(tpl != nullptr, "null wire template queued");
  make_room(tpl->size());
  pending_bytes_ += tpl->size();
  if (counters_ != nullptr) {
    counters_->add("egress_template_bytes_shared", tpl->size());
  }
  Entry e;
  e.tpl = std::move(tpl);
  e.packet_id = packet_id;
  e.dup = dup;
  entries_.push_back(std::move(e));
  audit_invariants();
}

void Outbox::flush() noexcept {
  // The write callback may feed bytes straight into a peer that responds
  // synchronously back into this link's owner, re-entering this outbox.
  // Detach the batch first so a nested flush only sees the new frames.
  while (!entries_.empty()) {
    std::vector<Entry> batch;
    batch.swap(entries_);
    const std::size_t batch_bytes = pending_bytes_;
    pending_bytes_ = 0;
    if (counters_ != nullptr) {
      counters_->add("egress_writes");
      counters_->add("egress_frames", batch.size());
      if (batch.size() > 1) counters_->add("egress_batched_writes");
    }
    if (batch.size() == 1) {
      // Single frame: hand the buffer over without concatenation.
      Entry& e = batch.front();
      write_(e.tpl ? e.tpl->patched(e.packet_id, e.dup) : e.owned);
    } else {
      // Concatenate into a recycled batch buffer. The buffer is taken
      // off the spare list for the duration of the write, so a reentrant
      // flush grabs (or creates) a different one instead of clobbering
      // bytes still being written.
      Bytes wire;
      if (!spare_batches_.empty()) {
        wire = std::move(spare_batches_.back());
        spare_batches_.pop_back();
        wire.clear();
      }
      wire.reserve(batch_bytes);
      for (Entry& e : batch) {
        const Bytes& frame =
            e.tpl ? e.tpl->patched(e.packet_id, e.dup) : e.owned;
        wire.insert(wire.end(), frame.begin(), frame.end());
      }
      write_(wire);
      if (spare_batches_.size() < 2) spare_batches_.push_back(std::move(wire));
    }
    // Park the flushed frames' buffers for take_buffer() reuse, then
    // recycle the batch vector's allocation for the next turn (unless
    // the write callback re-entered and queued fresh frames, which keeps
    // the loop going on the new entries instead).
    for (Entry& e : batch) {
      if (!e.tpl && !e.owned.empty()) recycle_buffer(std::move(e.owned));
      e.tpl.reset();
    }
    if (entries_.empty()) {
      batch.clear();
      entries_.swap(batch);
    }
  }
  audit_invariants();
}

void Outbox::clear() {
  for (Entry& e : entries_) {
    if (!e.tpl && !e.owned.empty()) recycle_buffer(std::move(e.owned));
  }
  entries_.clear();
  pending_bytes_ = 0;
  audit_invariants();
}

Bytes Outbox::take_buffer() noexcept {
  IFOT_AUDIT_ASSERT(spare_frames_.size() <= cfg_.max_queued_frames,
                    "outbox spare-frame list exceeded the queue bound");
  if (spare_frames_.empty()) return Bytes{};
  Bytes buf = std::move(spare_frames_.back());
  spare_frames_.pop_back();
  buf.clear();
  return buf;
}

// static: alloc(spare-buffer list growth while the pool warms up;
// parked buffers are handed back out by take_buffer afterwards)
void Outbox::recycle_buffer(Bytes&& buf) noexcept {
  if (spare_frames_.size() >= cfg_.max_queued_frames) return;  // bounded
  spare_frames_.push_back(std::move(buf));
}

void Outbox::make_room(std::size_t incoming_bytes) {
  if (entries_.empty()) return;
  if (entries_.size() + 1 > cfg_.max_queued_frames ||
      pending_bytes_ + incoming_bytes > cfg_.max_batch_bytes) {
    flush();
  }
}

void Outbox::audit_invariants() const {
  if constexpr (!audit::kEnabled) return;
  IFOT_AUDIT_ASSERT(entries_.size() <= cfg_.max_queued_frames,
                    "outbox exceeded its frame bound");
  // A single frame may legitimately exceed the byte bound (it still goes
  // out whole); two or more queued frames never do.
  IFOT_AUDIT_ASSERT(entries_.size() <= 1 ||
                        pending_bytes_ <= cfg_.max_batch_bytes,
                    "outbox batch exceeded its byte bound");
  std::size_t total = 0;
  for (const Entry& e : entries_) {
    total += entry_size(e);
    if (e.tpl) {
      IFOT_AUDIT_ASSERT(e.owned.empty(),
                        "entry holds both a template and an owned buffer");
      IFOT_AUDIT_ASSERT(e.tpl->has_packet_id() == (e.packet_id != 0),
                        "template id field disagrees with the queued id");
      IFOT_AUDIT_ASSERT(!e.dup || e.packet_id != 0,
                        "DUP queued for an id-less (QoS 0) frame");
    } else {
      IFOT_AUDIT_ASSERT(e.packet_id == 0 && !e.dup,
                        "owned frame queued with patch state");
    }
  }
  IFOT_AUDIT_ASSERT(total == pending_bytes_,
                    "outbox byte accounting diverged from its entries");
}

}  // namespace ifot::mqtt
