#include "recipe/recipe.hpp"

#include <algorithm>
#include <set>

namespace ifot::recipe {

double RecipeNode::num(const std::string& key, double fallback) const {
  auto it = params.find(key);
  if (it == params.end()) return fallback;
  if (const auto* v = std::get_if<double>(&it->second)) return *v;
  return fallback;
}

std::string RecipeNode::str(const std::string& key,
                            const std::string& fallback) const {
  auto it = params.find(key);
  if (it == params.end()) return fallback;
  if (const auto* v = std::get_if<std::string>(&it->second)) return *v;
  return fallback;
}

bool RecipeNode::flag(const std::string& key, bool fallback) const {
  auto it = params.find(key);
  if (it == params.end()) return fallback;
  if (const auto* v = std::get_if<bool>(&it->second)) return *v;
  return fallback;
}

std::size_t Recipe::index_of(const std::string& node_name) const {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].name == node_name) return i;
  }
  return SIZE_MAX;
}

std::vector<std::size_t> Recipe::inputs_of(std::size_t node) const {
  std::vector<std::size_t> out;
  for (const auto& [from, to] : edges) {
    if (to == node) out.push_back(from);
  }
  return out;
}

std::vector<std::size_t> Recipe::outputs_of(std::size_t node) const {
  std::vector<std::size_t> out;
  for (const auto& [from, to] : edges) {
    if (from == node) out.push_back(to);
  }
  return out;
}

const std::vector<std::string>& known_node_types() {
  static const std::vector<std::string> kTypes = {
      "sensor", "tap",      "window",  "filter", "map",      "anomaly",
      "train",  "predict",  "estimate", "cluster", "merge", "actuator",
  };
  return kTypes;
}

bool is_source_type(const std::string& type) {
  return type == "sensor" || type == "tap";
}
bool is_sink_type(const std::string& type) { return type == "actuator"; }

namespace {

Status validate_params(const RecipeNode& n) {
  auto fail = [&](const std::string& why) -> Status {
    return Err(Errc::kInvalidArgument,
               "node '" + n.name + "' (" + n.type + "): " + why);
  };
  if (n.type == "sensor") {
    if (n.num("rate_hz", 0) <= 0) return fail("rate_hz must be > 0");
  } else if (n.type == "tap") {
    if (!n.has("topic")) return fail("tap requires a topic parameter");
  } else if (n.type == "window") {
    if (n.has("span_ms")) {
      if (n.num("span_ms", 0) <= 0) return fail("span_ms must be > 0");
    } else if (n.num("size", 0) < 1) {
      return fail("size must be >= 1");
    }
    const auto agg = n.str("aggregate", "mean");
    static const std::set<std::string> kAggs = {"mean", "min", "max", "sum",
                                                "last"};
    if (kAggs.find(agg) == kAggs.end()) {
      return fail("unknown aggregate '" + agg + "'");
    }
  } else if (n.type == "filter") {
    static const std::set<std::string> kOps = {"lt", "le", "gt", "ge", "eq",
                                               "ne"};
    if (kOps.find(n.str("op", "gt")) == kOps.end()) {
      return fail("unknown op '" + n.str("op", "gt") + "'");
    }
  } else if (n.type == "anomaly") {
    const auto alg = n.str("algorithm", "zscore");
    if (alg != "zscore" && alg != "lof") {
      return fail("unknown algorithm '" + alg + "'");
    }
    if (n.num("threshold", 3.0) <= 0) return fail("threshold must be > 0");
  } else if (n.type == "train" || n.type == "predict") {
    static const std::set<std::string> kAlgos = {"perceptron", "pa",  "pa1",
                                                 "pa2",        "cw",  "arow"};
    if (kAlgos.find(n.str("algorithm", "arow")) == kAlgos.end()) {
      return fail("unknown algorithm '" + n.str("algorithm", "arow") + "'");
    }
  } else if (n.type == "cluster") {
    if (n.num("k", 0) < 1) return fail("k must be >= 1");
  }
  if (n.has("qos")) {
    const double qos = n.num("qos", 0);
    if (qos < 0 || qos > 2 ||
        qos != static_cast<double>(static_cast<int>(qos))) {
      return fail("qos must be 0, 1 or 2");
    }
  }
  const double parallelism = n.num("parallelism", 1);
  if (parallelism < 1 || parallelism != static_cast<double>(
                                            static_cast<int>(parallelism))) {
    return fail("parallelism must be a positive integer");
  }
  if (parallelism > 1 && (is_source_type(n.type) || is_sink_type(n.type))) {
    return fail("sources and sinks cannot be parallelized");
  }
  return {};
}

}  // namespace

Status validate(const Recipe& r) {
  if (r.name.empty()) {
    return Err(Errc::kInvalidArgument, "recipe has no name");
  }
  if (r.nodes.empty()) {
    return Err(Errc::kInvalidArgument, "recipe has no nodes");
  }
  std::set<std::string> names;
  for (const auto& n : r.nodes) {
    if (n.name.empty()) {
      return Err(Errc::kInvalidArgument, "node with empty name");
    }
    if (!names.insert(n.name).second) {
      return Err(Errc::kInvalidArgument, "duplicate node name: " + n.name);
    }
    const auto& types = known_node_types();
    if (std::find(types.begin(), types.end(), n.type) == types.end()) {
      return Err(Errc::kInvalidArgument,
                 "node '" + n.name + "' has unknown type: " + n.type);
    }
    if (auto s = validate_params(n); !s) return s;
  }
  std::set<std::pair<std::size_t, std::size_t>> seen_edges;
  for (const auto& [from, to] : r.edges) {
    if (from >= r.nodes.size() || to >= r.nodes.size()) {
      return Err(Errc::kInvalidArgument, "edge references unknown node");
    }
    if (from == to) {
      return Err(Errc::kInvalidArgument,
                 "self-loop on node: " + r.nodes[from].name);
    }
    if (!seen_edges.insert({from, to}).second) {
      return Err(Errc::kInvalidArgument,
                 "duplicate edge: " + r.nodes[from].name + " -> " +
                     r.nodes[to].name);
    }
  }
  for (std::size_t i = 0; i < r.nodes.size(); ++i) {
    const auto& n = r.nodes[i];
    const auto ins = r.inputs_of(i);
    const auto outs = r.outputs_of(i);
    if (is_source_type(n.type) && !ins.empty()) {
      return Err(Errc::kInvalidArgument,
                 "source node '" + n.name + "' has inputs");
    }
    if (is_sink_type(n.type) && !outs.empty()) {
      return Err(Errc::kInvalidArgument,
                 "sink node '" + n.name + "' has outputs");
    }
    if (!is_source_type(n.type) && ins.empty()) {
      return Err(Errc::kInvalidArgument,
                 "node '" + n.name + "' has no inputs");
    }
  }
  if (auto order = topological_order(r); !order) return order.error();
  return {};
}

Result<std::vector<std::size_t>> topological_order(const Recipe& r) {
  std::vector<std::size_t> in_degree(r.nodes.size(), 0);
  for (const auto& [from, to] : r.edges) {
    if (from >= r.nodes.size() || to >= r.nodes.size()) {
      return Err(Errc::kInvalidArgument, "edge references unknown node");
    }
    ++in_degree[to];
  }
  // Kahn's algorithm; picks lowest index first for a deterministic order.
  std::vector<std::size_t> order;
  std::vector<bool> emitted(r.nodes.size(), false);
  while (order.size() < r.nodes.size()) {
    bool progressed = false;
    for (std::size_t i = 0; i < r.nodes.size(); ++i) {
      if (emitted[i] || in_degree[i] != 0) continue;
      emitted[i] = true;
      order.push_back(i);
      for (std::size_t to : r.outputs_of(i)) --in_degree[to];
      progressed = true;
    }
    if (!progressed) {
      return Err(Errc::kInvalidArgument, "recipe graph contains a cycle");
    }
  }
  return order;
}

}  // namespace ifot::recipe
