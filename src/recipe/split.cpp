#include "recipe/split.hpp"

#include <algorithm>
#include <tuple>

#include "common/audit.hpp"

namespace ifot::recipe {
namespace {

/// Does `filter` tap the stream published by task `up`? The filter's
/// leading levels must match the output topic level-by-level ('+'
/// wildcards the shard level); leftover trailing filter levels are the
/// partition / model side-channels (<out>/p<k>, <out>/+/model) and are
/// accepted.
bool filter_taps_output(const std::string& filter, const Task& up) {
  const std::string& out = up.output_topic;
  std::size_t fi = 0;
  std::size_t ti = 0;
  while (ti <= out.size()) {
    if (fi > filter.size()) return false;  // filter ran out before topic
    const std::size_t fe = std::min(filter.find('/', fi), filter.size());
    const std::string_view level =
        std::string_view(filter).substr(fi, fe - fi);
    if (level == "#") return true;
    const std::size_t te = std::min(out.find('/', ti), out.size());
    if (level != "+" &&
        level != std::string_view(out).substr(ti, te - ti)) {
      return false;
    }
    fi = fe + 1;
    ti = te + 1;
  }
  return true;  // all topic levels consumed; any filter remainder is a
                // side-channel suffix
}

/// Structural invariants of a freshly split graph (audit builds only):
/// task ids are dense and topologically sorted, the per-input parallel
/// arrays line up, the stages partition the task set, and every internal
/// input filter taps some upstream task's stream (split/merge conserves
/// stream endpoints; `tap` tasks read external streams and are skipped).
void audit_task_graph(const TaskGraph& g) {
  if constexpr (!audit::kEnabled) return;

  std::vector<std::size_t> staged(g.tasks.size(), 0);
  for (const auto& stage : g.stages) {
    for (std::size_t ti : stage) {
      IFOT_AUDIT_ASSERT(ti < g.tasks.size(), "stage entry out of range");
      ++staged[ti];
    }
  }
  for (std::size_t ti = 0; ti < g.tasks.size(); ++ti) {
    IFOT_AUDIT_ASSERT(staged[ti] == 1,
                      "task '" + g.tasks[ti].name +
                          "' appears in " + std::to_string(staged[ti]) +
                          " stages (stages must partition the task set)");
  }

  for (std::size_t ti = 0; ti < g.tasks.size(); ++ti) {
    const Task& t = g.tasks[ti];
    IFOT_AUDIT_ASSERT(t.id.value() == ti,
                      "task ids must be dense and index-aligned");
    IFOT_AUDIT_ASSERT(t.recipe_node < g.recipe.nodes.size(),
                      "task '" + t.name + "' references a missing node");
    IFOT_AUDIT_ASSERT(t.shard < t.shard_count,
                      "task '" + t.name + "' shard index out of range");
    IFOT_AUDIT_ASSERT(t.partition_count >= 1,
                      "task '" + t.name + "' has zero partitions");
    IFOT_AUDIT_ASSERT(
        t.input_brokers.size() == t.input_topics.size() &&
            t.input_qos.size() == t.input_topics.size(),
        "task '" + t.name + "' input arrays diverged: " +
            std::to_string(t.input_topics.size()) + " topics, " +
            std::to_string(t.input_brokers.size()) + " brokers, " +
            std::to_string(t.input_qos.size()) + " qos");
    for (TaskId up : t.upstream) {
      // Pass 1 emits tasks in topological order, so an upstream id always
      // precedes its consumer; allocators rely on this.
      IFOT_AUDIT_ASSERT(up.value() < ti,
                        "task '" + t.name +
                            "' has a non-topological upstream reference");
    }
    if (g.recipe.nodes[t.recipe_node].type == "tap") continue;
    for (const auto& filter : t.input_topics) {
      bool conserved = false;
      for (TaskId up : t.upstream) {
        if (filter_taps_output(filter, g.tasks[up.value()])) {
          conserved = true;
          break;
        }
      }
      // Learner-side MIX: sharded train tasks tap their sibling shards'
      // model streams (same recipe node, not an upstream edge).
      if (!conserved) {
        for (const Task& sib : g.tasks) {
          if (sib.recipe_node == t.recipe_node &&
              filter_taps_output(filter, sib)) {
            conserved = true;
            break;
          }
        }
      }
      IFOT_AUDIT_ASSERT(conserved,
                        "input '" + filter + "' of task '" + t.name +
                            "' taps no upstream stream (endpoint lost in "
                            "split)");
    }
  }
}

}  // namespace

double default_cost_weight(const std::string& node_type) {
  // Relative service demand per sample, loosely calibrated against the
  // Raspberry Pi CPU model in src/node/cpu_model.hpp.
  if (node_type == "train") return 8.0;
  if (node_type == "predict") return 4.0;
  if (node_type == "estimate") return 5.0;
  if (node_type == "anomaly") return 6.0;
  if (node_type == "cluster") return 4.0;
  if (node_type == "window") return 1.5;
  if (node_type == "merge") return 1.2;
  if (node_type == "map") return 1.2;
  if (node_type == "filter") return 1.0;
  if (node_type == "sensor") return 0.8;
  if (node_type == "tap") return 1.0;
  if (node_type == "actuator") return 0.8;
  return 1.0;
}

Result<TaskGraph> split_recipe(const Recipe& r) {
  if (auto s = validate(r); !s) return s.error();

  TaskGraph g;
  g.recipe_name = r.name;
  g.recipe = r;

  auto order = topological_order(r);
  if (!order) return order.error();

  // Pass 1: create shard tasks per node, in topological order so task
  // indices are themselves topologically sorted (allocators rely on it).
  std::vector<std::vector<std::size_t>> node_tasks(r.nodes.size());
  for (std::size_t ni : order.value()) {
    const RecipeNode& node = r.nodes[ni];
    const auto shards = static_cast<std::size_t>(node.num("parallelism", 1));
    for (std::size_t s = 0; s < shards; ++s) {
      Task t;
      t.id = TaskId{static_cast<TaskId::value_type>(g.tasks.size())};
      t.recipe_node = ni;
      t.shard = s;
      t.shard_count = shards;
      t.name = shards == 1 ? node.name
                           : node.name + "#" + std::to_string(s);
      t.output_topic = "ifot/" + r.name + "/" + node.name;
      if (shards > 1) t.output_topic += "/" + std::to_string(s);
      // Sensor load scales with its sampling rate (reference: 10 Hz), so
      // allocators avoid stacking work onto fast-sampling modules.
      double weight = default_cost_weight(node.type);
      if (node.type == "sensor") {
        weight *= std::max(1.0, node.num("rate_hz", 10) / 10.0);
      }
      t.cost_weight = weight / static_cast<double>(shards);
      t.output_broker = static_cast<int>(node.num("broker", -1));
      t.output_qos = static_cast<int>(node.num("qos", -1));
      t.retained_output = node.flag("retain", false);
      // Taps are sources within the recipe graph but subscribe to the
      // named external topic (another application's flow); the producing
      // application's broker assignment rides the optional tap param.
      if (node.type == "tap") {
        t.input_topics.push_back(node.str("topic", ""));
        t.input_brokers.push_back(
            static_cast<int>(node.num("topic_broker", -1)));
        t.input_qos.push_back(static_cast<int>(node.num("topic_qos", -1)));
      }
      // Learner-side MIX (the Managing class): sharded train nodes with
      // `mix = true` subscribe to their sibling shards' model topics and
      // adopt the averaged model. Models ride <base>/<shard> normally and
      // <base>/<shard>/model when the node's own output is partitioned
      // (same-K sharded downstream consumers); cover both.
      if (node.type == "train" && shards > 1 && node.flag("mix", false)) {
        const std::string mix_base = "ifot/" + r.name + "/" + node.name;
        t.input_topics.push_back(mix_base + "/+");
        t.input_brokers.push_back(t.output_broker);
        t.input_qos.push_back(t.output_qos);
        t.input_topics.push_back(mix_base + "/+/model");
        t.input_brokers.push_back(t.output_broker);
        t.input_qos.push_back(t.output_qos);
      }
      node_tasks[ni].push_back(g.tasks.size());
      g.tasks.push_back(std::move(t));
    }
  }

  // Pass 2a: decide partitioned routing per producer node. A producer's
  // sample output is partitioned when all of its sharded consumers agree
  // on one shard count K and none opted out (`partitioned = false`);
  // otherwise shards filter client-side by sequence number.
  std::vector<std::size_t> partition_of(r.nodes.size(), 1);
  for (std::size_t ni = 0; ni < r.nodes.size(); ++ni) {
    std::size_t k = 1;
    bool ok = true;
    for (std::size_t ci : r.outputs_of(ni)) {
      const RecipeNode& consumer = r.nodes[ci];
      const auto shards =
          static_cast<std::size_t>(consumer.num("parallelism", 1));
      if (shards <= 1) continue;
      if (!consumer.flag("partitioned", true)) {
        ok = false;
        break;
      }
      if (k != 1 && k != shards) {
        ok = false;  // consumers disagree on shard count
        break;
      }
      k = shards;
    }
    if (ok && k > 1) partition_of[ni] = k;
  }
  for (std::size_t ni = 0; ni < r.nodes.size(); ++ni) {
    for (std::size_t ti : node_tasks[ni]) {
      g.tasks[ti].partition_count = partition_of[ni];
    }
  }

  // Pass 2b: wire upstream topics. Every shard of a consumer node
  // subscribes to each producer node; sharded producers are covered with
  // a single '+' wildcard level; partitioned producers add the /p<i> (or
  // /model) suffix level.
  for (const auto& [from, to] : r.edges) {
    const RecipeNode& producer = r.nodes[from];
    const RecipeNode& consumer = r.nodes[to];
    const auto producer_shards =
        static_cast<std::size_t>(producer.num("parallelism", 1));
    const auto consumer_shards =
        static_cast<std::size_t>(consumer.num("parallelism", 1));
    std::string base = "ifot/" + r.name + "/" + producer.name;
    if (producer_shards > 1) base += "/+";
    const int producer_broker = static_cast<int>(producer.num("broker", -1));
    const int producer_qos = static_cast<int>(producer.num("qos", -1));
    for (std::size_t task_index : node_tasks[to]) {
      Task& t = g.tasks[task_index];
      auto add_filter = [&](std::string filter) {
        t.input_topics.push_back(std::move(filter));
        t.input_brokers.push_back(producer_broker);
        t.input_qos.push_back(producer_qos);
      };
      if (partition_of[from] > 1) {
        if (consumer_shards > 1) {
          // Own partition plus the model side-channel.
          add_filter(base + "/p" + std::to_string(t.shard));
          add_filter(base + "/model");
        } else {
          add_filter(base + "/+");
        }
      } else {
        add_filter(base);
      }
      for (std::size_t up_index : node_tasks[from]) {
        t.upstream.push_back(g.tasks[up_index].id);
      }
    }
  }
  for (auto& t : g.tasks) {
    std::sort(t.upstream.begin(), t.upstream.end());
    t.upstream.erase(std::unique(t.upstream.begin(), t.upstream.end()),
                     t.upstream.end());
    // Deduplicate filters keeping the (filter, broker, qos) triple intact.
    std::vector<std::tuple<std::string, int, int>> paired;
    paired.reserve(t.input_topics.size());
    for (std::size_t i = 0; i < t.input_topics.size(); ++i) {
      paired.emplace_back(t.input_topics[i], t.input_brokers[i],
                          t.input_qos[i]);
    }
    std::sort(paired.begin(), paired.end());
    paired.erase(std::unique(paired.begin(), paired.end()), paired.end());
    t.input_topics.clear();
    t.input_brokers.clear();
    t.input_qos.clear();
    for (auto& [f, b, q] : paired) {
      t.input_topics.push_back(std::move(f));
      t.input_brokers.push_back(b);
      t.input_qos.push_back(q);
    }
  }

  // Pass 3: topological stages over tasks ("parallel task sets").
  std::vector<std::size_t> depth(g.tasks.size(), 0);
  std::size_t max_depth = 0;
  for (std::size_t ni : order.value()) {
    for (std::size_t ti : node_tasks[ni]) {
      std::size_t d = 0;
      for (TaskId up : g.tasks[ti].upstream) {
        d = std::max(d, depth[up.value()] + 1);
      }
      depth[ti] = d;
      max_depth = std::max(max_depth, d);
    }
  }
  g.stages.assign(max_depth + 1, {});
  for (std::size_t ti = 0; ti < g.tasks.size(); ++ti) {
    g.stages[depth[ti]].push_back(ti);
  }
  audit_task_graph(g);
  return g;
}

}  // namespace ifot::recipe
