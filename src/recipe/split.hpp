// The Recipe split class (paper §IV-C.1): reads an application's recipe
// and divides it into tasks that can be executed in parallel.
//
// Splitting performs two things:
//  * one task per recipe node, carrying the MQTT topics that implement the
//    recipe's edges (topic scheme: ifot/<recipe>/<node>[/<shard>]);
//  * data-parallel fission: a node with `parallelism = n` becomes n shard
//    tasks; shards partition the stream by sample sequence number, and
//    downstream tasks subscribe to the shard topics with a '+' wildcard;
//  * partitioned routing: when every sharded consumer of a producer uses
//    the same shard count K (and none sets `partitioned = false`), the
//    producer publishes each sample to <topic>/p<seq%K> and shard i
//    subscribes only its own partition — the broker then fans each sample
//    out to one shard instead of all K (models ride <topic>/model).
//    Without this, broker routing work grows with K and the Broker class
//    becomes the bottleneck that parallelism was meant to remove.
//
// The result also carries the topological stages ("tasks that can be
// performed in parallel", paper Fig. 6 Step 2) used by the allocator.
#pragma once

#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"
#include "recipe/recipe.hpp"

namespace ifot::recipe {

/// One executable sub-task produced by splitting.
struct Task {
  TaskId id;
  std::size_t recipe_node = 0;  ///< index into Recipe::nodes
  std::size_t shard = 0;        ///< shard index within the node
  std::size_t shard_count = 1;  ///< total shards of the node
  std::string name;             ///< "<node>" or "<node>#<shard>"
  std::vector<TaskId> upstream;       ///< producer tasks (within the recipe)
  std::string output_topic;           ///< topic this task publishes to
  /// Filters this task subscribes to; for `tap` sources this is the
  /// external topic named in the recipe.
  std::vector<std::string> input_topics;
  /// Relative CPU weight (used by cost-aware allocators); derived from
  /// node type (training is heavier than filtering).
  double cost_weight = 1.0;
  /// >1: sample output is split across `<output_topic>/p<seq%K>` topics
  /// (partitioned routing for sharded consumers); models then ride
  /// `<output_topic>/model`.
  std::size_t partition_count = 1;
  /// Broker handling this task's output flow in a multi-broker fabric:
  /// the recipe node's `broker = N` parameter, or -1 for hash-based
  /// assignment (stable on the output topic base).
  int output_broker = -1;
  /// MQTT QoS of this task's output flow: the recipe node's `qos`
  /// parameter (0/1/2), or -1 for the fabric default. Consumers subscribe
  /// at the producer's level.
  int output_qos = -1;
  /// The recipe node's `retain` flag: samples are published retained so
  /// late subscribers (taps of slowly-changing flows) see the last value
  /// immediately.
  bool retained_output = false;
  /// QoS per input filter (parallel to input_topics), from the producing
  /// node; -1 = fabric default.
  std::vector<int> input_qos;
  /// Broker per input filter (parallel to input_topics): the producing
  /// node's assignment, or -1 for hash-based.
  std::vector<int> input_brokers;
};

/// The split result: tasks plus parallel stages.
struct TaskGraph {
  std::string recipe_name;
  Recipe recipe;
  std::vector<Task> tasks;
  /// Topological levels: stages[i] lists indices into `tasks` that may
  /// run concurrently once stages[0..i-1] are placed.
  std::vector<std::vector<std::size_t>> stages;

  [[nodiscard]] const Task& task(TaskId id) const {
    return tasks[id.value()];
  }
};

/// Default per-type CPU weight (1.0 = a trivial pass-through step).
double default_cost_weight(const std::string& node_type);

/// Splits a validated recipe. Fails when the recipe does not validate.
Result<TaskGraph> split_recipe(const Recipe& r);

}  // namespace ifot::recipe
