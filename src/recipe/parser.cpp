#include "recipe/parser.hpp"

#include <cmath>

#include "common/strings.hpp"

namespace ifot::recipe {
namespace {

Error parse_err(std::size_t line_no, const std::string& why) {
  return Err(Errc::kParse, "line " + std::to_string(line_no) + ": " + why);
}

/// Parses one `key = value` assignment.
Result<std::pair<std::string, Param>> parse_assignment(
    std::string_view text, std::size_t line_no) {
  const auto eq = text.find('=');
  if (eq == std::string_view::npos) {
    return parse_err(line_no, "expected 'key = value' in parameter block");
  }
  const std::string key{trim(text.substr(0, eq))};
  const std::string_view raw = trim(text.substr(eq + 1));
  if (key.empty()) return parse_err(line_no, "empty parameter key");
  if (raw.empty()) return parse_err(line_no, "empty value for key '" + key + "'");
  if (raw.front() == '"') {
    if (raw.size() < 2 || raw.back() != '"') {
      return parse_err(line_no, "unterminated string for key '" + key + "'");
    }
    return std::pair{key, Param{std::string(raw.substr(1, raw.size() - 2))}};
  }
  if (raw == "true") return std::pair{key, Param{true}};
  if (raw == "false") return std::pair{key, Param{false}};
  auto num = parse_double(raw);
  if (!num) {
    return parse_err(line_no, "bad value for key '" + key +
                                  "': " + num.error().message);
  }
  return std::pair{key, Param{num.value()}};
}

/// Splits a parameter block body on commas that are outside quotes.
std::vector<std::string> split_params(std::string_view body) {
  std::vector<std::string> out;
  std::string current;
  bool in_string = false;
  for (char c : body) {
    if (c == '"') in_string = !in_string;
    if (c == ',' && !in_string) {
      out.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!trim(current).empty() || !out.empty()) out.push_back(current);
  return out;
}

Status parse_node_line(Recipe& r, std::string_view rest, std::size_t line_no) {
  // <name> : <type> [{ params }]
  const auto colon = rest.find(':');
  if (colon == std::string_view::npos) {
    return parse_err(line_no, "expected 'node <name> : <type>'");
  }
  RecipeNode node;
  node.name = std::string(trim(rest.substr(0, colon)));
  std::string_view after = trim(rest.substr(colon + 1));
  const auto brace = after.find('{');
  if (brace == std::string_view::npos) {
    node.type = std::string(trim(after));
  } else {
    node.type = std::string(trim(after.substr(0, brace)));
    if (after.back() != '}') {
      return parse_err(line_no, "missing closing '}'");
    }
    const std::string_view body =
        after.substr(brace + 1, after.size() - brace - 2);
    for (const auto& part : split_params(body)) {
      if (trim(part).empty()) continue;
      auto kv = parse_assignment(part, line_no);
      if (!kv) return kv.error();
      if (!node.params.emplace(kv.value()).second) {
        return parse_err(line_no, "duplicate key '" + kv.value().first + "'");
      }
    }
  }
  if (node.name.empty()) return parse_err(line_no, "empty node name");
  if (node.type.empty()) return parse_err(line_no, "empty node type");
  r.nodes.push_back(std::move(node));
  return {};
}

Status parse_edge_line(Recipe& r, std::string_view rest, std::size_t line_no) {
  // <name> -> <name> [-> <name>]*
  std::vector<std::string> hops;
  std::size_t pos = 0;
  while (pos <= rest.size()) {
    const auto arrow = rest.find("->", pos);
    const std::string_view hop =
        arrow == std::string_view::npos
            ? rest.substr(pos)
            : rest.substr(pos, arrow - pos);
    hops.emplace_back(trim(hop));
    if (arrow == std::string_view::npos) break;
    pos = arrow + 2;
  }
  if (hops.size() < 2) {
    return parse_err(line_no, "edge needs at least two nodes");
  }
  for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
    const std::size_t from = r.index_of(hops[i]);
    const std::size_t to = r.index_of(hops[i + 1]);
    if (from == SIZE_MAX) {
      return parse_err(line_no, "unknown node: '" + hops[i] + "'");
    }
    if (to == SIZE_MAX) {
      return parse_err(line_no, "unknown node: '" + hops[i + 1] + "'");
    }
    r.edges.emplace_back(from, to);
  }
  return {};
}

}  // namespace

Result<Recipe> parse(std::string_view text) {
  Recipe r;
  std::size_t line_no = 0;
  for (const auto& raw_line : split(text, '\n')) {
    ++line_no;
    std::string_view line{raw_line};
    if (const auto hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;

    if (starts_with(line, "recipe ")) {
      if (!r.name.empty()) {
        return parse_err(line_no, "duplicate 'recipe' directive");
      }
      r.name = std::string(trim(line.substr(7)));
      if (r.name.empty()) return parse_err(line_no, "empty recipe name");
    } else if (starts_with(line, "node ")) {
      if (auto s = parse_node_line(r, trim(line.substr(5)), line_no); !s) {
        return s.error();
      }
    } else if (starts_with(line, "edge ")) {
      if (auto s = parse_edge_line(r, trim(line.substr(5)), line_no); !s) {
        return s.error();
      }
    } else {
      return parse_err(line_no, "unknown directive");
    }
  }
  if (auto s = validate(r); !s) return s.error();
  return r;
}

std::string to_text(const Recipe& r) {
  std::string out = "recipe " + r.name + "\n";
  for (const auto& n : r.nodes) {
    out += "node " + n.name + " : " + n.type;
    if (!n.params.empty()) {
      out += " { ";
      bool first = true;
      for (const auto& [k, v] : n.params) {
        if (!first) out += ", ";
        first = false;
        out += k + " = ";
        if (const auto* d = std::get_if<double>(&v)) {
          // Integral doubles print without the trailing ".000000".
          if (*d == std::floor(*d) && std::abs(*d) < 1e15) {
            out += std::to_string(static_cast<long long>(*d));
          } else {
            out += std::to_string(*d);
          }
        } else if (const auto* s = std::get_if<std::string>(&v)) {
          out += "\"" + *s + "\"";
        } else {
          out += std::get<bool>(v) ? "true" : "false";
        }
      }
      out += " }";
    }
    out += "\n";
  }
  for (const auto& [from, to] : r.edges) {
    out += "edge " + r.nodes[from].name + " -> " + r.nodes[to].name + "\n";
  }
  return out;
}

}  // namespace ifot::recipe
