// The Recipe: a configuration describing how IoT data streams are
// processed, analyzed and merged (paper §IV-C, Fig. 5). A recipe is a
// directed acyclic task graph whose nodes are processing steps and whose
// edges are flows.
//
// Node types understood by the runtime (src/node):
//   sensor   — flow source bound to a physical/virtual sensor
//   tap      — flow source bound to an *existing* topic of another
//              application (secondary/tertiary use of flows, paper §VI)
//   window   — sliding/tumbling aggregation over a stream
//   filter   — predicate on a sample field
//   map      — arithmetic transform of sample fields
//   anomaly  — streaming anomaly detection (zscore | lof)
//   train    — online model training (perceptron|pa|pa1|pa2|cw|arow)
//   predict  — classification with the latest trained model
//   estimate — online regression (train+predict on one stream)
//   cluster  — sequential k-means assignment
//   merge    — fan-in of several flows into one
//   actuator — flow sink bound to a physical/virtual actuator
#pragma once

#include <map>
#include <string>
#include <variant>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"

namespace ifot::recipe {

/// A parameter value in a recipe node's `{ key = value }` block.
using Param = std::variant<double, std::string, bool>;
using ParamMap = std::map<std::string, Param>;

/// One processing step.
struct RecipeNode {
  std::string name;
  std::string type;
  ParamMap params;

  /// Typed parameter lookup; `fallback` when absent or wrong type.
  [[nodiscard]] double num(const std::string& key, double fallback) const;
  [[nodiscard]] std::string str(const std::string& key,
                                const std::string& fallback) const;
  [[nodiscard]] bool flag(const std::string& key, bool fallback) const;
  [[nodiscard]] bool has(const std::string& key) const {
    return params.find(key) != params.end();
  }
};

/// A parsed recipe: named DAG of processing steps.
struct Recipe {
  std::string name;
  std::vector<RecipeNode> nodes;
  /// Edges as (from_index, to_index) into `nodes`.
  std::vector<std::pair<std::size_t, std::size_t>> edges;

  [[nodiscard]] std::size_t index_of(const std::string& node_name) const;
  [[nodiscard]] std::vector<std::size_t> inputs_of(std::size_t node) const;
  [[nodiscard]] std::vector<std::size_t> outputs_of(std::size_t node) const;
};

/// The node types the runtime implements.
[[nodiscard]] const std::vector<std::string>& known_node_types();
[[nodiscard]] bool is_source_type(const std::string& type);
[[nodiscard]] bool is_sink_type(const std::string& type);

/// Structural validation: unique names, known types, edges in range,
/// sources have no inputs, sinks have no outputs, every non-source has at
/// least one input, graph is acyclic, parameters are well-formed for the
/// node type (e.g. anomaly.algorithm in {zscore, lof}).
Status validate(const Recipe& r);

/// Topological order of node indices; fails on cycles.
Result<std::vector<std::size_t>> topological_order(const Recipe& r);

}  // namespace ifot::recipe
