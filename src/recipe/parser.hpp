// Text format for recipes. The paper leaves the recipe language as future
// work ("Definition of the language to describe recipes ... are also part
// of future work"); this module supplies one.
//
// Grammar (line-oriented; '#' starts a comment):
//
//   recipe <name>
//   node <name> : <type> [{ key = value [, key = value]* }]
//   edge <name> -> <name> [-> <name>]*
//
// Values are numbers (1, 2.5), booleans (true/false) or quoted strings
// ("accelerometer"). Example:
//
//   recipe elderly_monitoring
//   node accel  : sensor  { sensor = "accelerometer", rate_hz = 20 }
//   node detect : anomaly { algorithm = "zscore", threshold = 3.0 }
//   node alarm  : actuator { actuator = "bedside_alarm" }
//   edge accel -> detect -> alarm
#pragma once

#include <string_view>

#include "common/result.hpp"
#include "recipe/recipe.hpp"

namespace ifot::recipe {

/// Parses and validates a recipe from its text form. Errors carry the
/// 1-based line number.
Result<Recipe> parse(std::string_view text);

/// Serializes a recipe back to the text form (round-trips with parse).
std::string to_text(const Recipe& r);

}  // namespace ifot::recipe
