#include "alloc/allocator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ifot::alloc {
namespace {

/// Returns the modules allowed to run `task` (device constraints plus the
/// optional explicit `pin = "<module>"` parameter, which mirrors the
/// paper's management software placing classes on chosen modules), or all
/// modules when unconstrained. Empty result = unsatisfiable.
std::vector<std::size_t> candidates(const recipe::TaskGraph& graph,
                                    const recipe::Task& task,
                                    const std::vector<ModuleInfo>& modules) {
  const auto& node = graph.recipe.nodes[task.recipe_node];
  std::vector<std::size_t> out;
  if (node.has("pin")) {
    const std::string target = node.str("pin", "");
    for (std::size_t i = 0; i < modules.size(); ++i) {
      if (modules[i].name == target) out.push_back(i);
    }
    return out;
  }
  if (node.type == "sensor") {
    const std::string device = node.str("sensor", node.name);
    for (std::size_t i = 0; i < modules.size(); ++i) {
      if (modules[i].sensors.count(device) != 0) out.push_back(i);
    }
  } else if (node.type == "actuator") {
    const std::string device = node.str("actuator", node.name);
    for (std::size_t i = 0; i < modules.size(); ++i) {
      if (modules[i].actuators.count(device) != 0) out.push_back(i);
    }
  } else {
    out.resize(modules.size());
    for (std::size_t i = 0; i < modules.size(); ++i) out[i] = i;
  }
  return out;
}

Error unsatisfiable(const recipe::TaskGraph& graph,
                    const recipe::Task& task) {
  const auto& node = graph.recipe.nodes[task.recipe_node];
  if (node.has("pin")) {
    return Err(Errc::kNotFound, "task '" + task.name +
                                    "' is pinned to unknown module '" +
                                    node.str("pin", "") + "'");
  }
  return Err(Errc::kNotFound,
             "no module can host " + node.type + " task '" + task.name +
                 "' (device '" +
                 node.str(node.type == "sensor" ? "sensor" : "actuator",
                          node.name) +
                 "' not attached anywhere)");
}

}  // namespace

Result<Placement> RoundRobinAllocator::allocate(
    const recipe::TaskGraph& graph, const std::vector<ModuleInfo>& modules) {
  if (modules.empty()) return Err(Errc::kInvalidArgument, "no modules");
  Placement p;
  p.task_module.resize(graph.tasks.size());
  std::size_t cursor = 0;
  for (std::size_t ti = 0; ti < graph.tasks.size(); ++ti) {
    const auto cand = candidates(graph, graph.tasks[ti], modules);
    if (cand.empty()) return unsatisfiable(graph, graph.tasks[ti]);
    // Pick the next candidate at or after the cursor (cyclic).
    std::size_t chosen = cand[0];
    for (std::size_t c : cand) {
      if (c >= cursor % modules.size()) {
        chosen = c;
        break;
      }
    }
    p.task_module[ti] = modules[chosen].id;
    cursor = chosen + 1;
  }
  return p;
}

Result<Placement> LoadAwareAllocator::allocate(
    const recipe::TaskGraph& graph, const std::vector<ModuleInfo>& modules) {
  if (modules.empty()) return Err(Errc::kInvalidArgument, "no modules");
  Placement p;
  p.task_module.resize(graph.tasks.size());
  std::vector<double> load(modules.size());
  for (std::size_t i = 0; i < modules.size(); ++i) {
    load[i] = modules[i].existing_load;
  }
  // Place heavy tasks first so the greedy fill balances well.
  std::vector<std::size_t> order(graph.tasks.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return graph.tasks[a].cost_weight > graph.tasks[b].cost_weight;
  });
  for (std::size_t ti : order) {
    const auto cand = candidates(graph, graph.tasks[ti], modules);
    if (cand.empty()) return unsatisfiable(graph, graph.tasks[ti]);
    std::size_t best = cand[0];
    double best_load = HUGE_VAL;
    for (std::size_t c : cand) {
      const double projected =
          (load[c] + graph.tasks[ti].cost_weight) / modules[c].cpu_factor;
      if (projected < best_load) {
        best_load = projected;
        best = c;
      }
    }
    load[best] += graph.tasks[ti].cost_weight;
    p.task_module[ti] = modules[best].id;
  }
  return p;
}

Result<Placement> HeftAllocator::allocate(
    const recipe::TaskGraph& graph, const std::vector<ModuleInfo>& modules) {
  if (modules.empty()) return Err(Errc::kInvalidArgument, "no modules");
  const std::size_t n = graph.tasks.size();

  // Upward rank: longest path (cost + comm) from task to any sink.
  std::vector<std::vector<std::size_t>> downstream(n);
  for (std::size_t ti = 0; ti < n; ++ti) {
    for (TaskId up : graph.tasks[ti].upstream) {
      downstream[up.value()].push_back(ti);
    }
  }
  std::vector<double> rank(n, -1);
  // Tasks are created in topological order by split_recipe, so a reverse
  // sweep computes ranks in one pass.
  for (std::size_t i = n; i-- > 0;) {
    double best = 0;
    for (std::size_t d : downstream[i]) {
      assert(rank[d] >= 0);
      best = std::max(best, comm_cost_ + rank[d]);
    }
    rank[i] = graph.tasks[i].cost_weight + best;
  }
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (rank[a] != rank[b]) return rank[a] > rank[b];
    return a < b;  // deterministic tiebreak
  });

  Placement p;
  p.task_module.resize(n);
  std::vector<double> module_ready(modules.size());
  for (std::size_t i = 0; i < modules.size(); ++i) {
    module_ready[i] = modules[i].existing_load / modules[i].cpu_factor;
  }
  std::vector<double> finish(n, 0);
  std::vector<std::size_t> placed_on(n, SIZE_MAX);

  for (std::size_t ti : order) {
    const auto cand = candidates(graph, graph.tasks[ti], modules);
    if (cand.empty()) return unsatisfiable(graph, graph.tasks[ti]);
    std::size_t best = cand[0];
    double best_finish = HUGE_VAL;
    for (std::size_t c : cand) {
      double ready = module_ready[c];
      for (TaskId up : graph.tasks[ti].upstream) {
        const std::size_t ui = up.value();
        // HEFT processes tasks in rank order, which on stream DAGs is a
        // valid topological order, so upstream tasks are already placed.
        assert(placed_on[ui] != SIZE_MAX);
        const double arrival =
            finish[ui] + (placed_on[ui] == c ? 0.0 : comm_cost_);
        ready = std::max(ready, arrival);
      }
      const double f =
          ready + graph.tasks[ti].cost_weight / modules[c].cpu_factor;
      if (f < best_finish) {
        best_finish = f;
        best = c;
      }
    }
    placed_on[ti] = best;
    finish[ti] = best_finish;
    module_ready[best] = best_finish;
    p.task_module[ti] = modules[best].id;
  }
  return p;
}

std::unique_ptr<Allocator> make_allocator(const std::string& name) {
  if (name == "round_robin") return std::make_unique<RoundRobinAllocator>();
  if (name == "load_aware") return std::make_unique<LoadAwareAllocator>();
  if (name == "heft") return std::make_unique<HeftAllocator>();
  return nullptr;
}

PlacementMetrics evaluate_placement(const recipe::TaskGraph& graph,
                                    const std::vector<ModuleInfo>& modules,
                                    const Placement& placement,
                                    double comm_cost) {
  PlacementMetrics m;
  std::vector<double> load(modules.size());
  auto module_index = [&](NodeId id) {
    for (std::size_t i = 0; i < modules.size(); ++i) {
      if (modules[i].id == id) return i;
    }
    return SIZE_MAX;
  };
  for (std::size_t ti = 0; ti < graph.tasks.size(); ++ti) {
    const std::size_t mi = module_index(placement.task_module[ti]);
    assert(mi != SIZE_MAX);
    load[mi] += graph.tasks[ti].cost_weight / modules[mi].cpu_factor;
  }
  double total = 0;
  for (double l : load) {
    m.max_load = std::max(m.max_load, l);
    total += l;
  }
  const double mean = total / static_cast<double>(modules.size());
  m.imbalance = mean > 0 ? m.max_load / mean : 1.0;

  for (std::size_t ti = 0; ti < graph.tasks.size(); ++ti) {
    for (TaskId up : graph.tasks[ti].upstream) {
      if (placement.task_module[ti] !=
          placement.task_module[up.value()]) {
        ++m.cross_edges;
      }
    }
  }

  // Critical-path estimate with per-task finish times (list order).
  std::vector<double> finish(graph.tasks.size(), 0);
  std::vector<double> module_ready(modules.size(), 0);
  for (std::size_t i = 0; i < modules.size(); ++i) {
    module_ready[i] = modules[i].existing_load / modules[i].cpu_factor;
  }
  for (std::size_t ti = 0; ti < graph.tasks.size(); ++ti) {
    const std::size_t mi = module_index(placement.task_module[ti]);
    double ready = module_ready[mi];
    for (TaskId up : graph.tasks[ti].upstream) {
      const std::size_t umi = module_index(placement.task_module[up.value()]);
      ready = std::max(ready,
                       finish[up.value()] + (umi == mi ? 0.0 : comm_cost));
    }
    finish[ti] = ready + graph.tasks[ti].cost_weight / modules[mi].cpu_factor;
    module_ready[mi] = finish[ti];
    m.est_makespan = std::max(m.est_makespan, finish[ti]);
  }
  return m;
}

}  // namespace ifot::alloc
