// The Task assignment class (paper §IV-C.1): distributes the tasks
// produced by recipe splitting across IFoT neuron modules "depending on
// the processing capability" of each node.
//
// Hard constraints: a sensor task must run on a module that hosts that
// sensor; an actuator task on a module hosting that actuator. Strategies
// differ in how the remaining tasks are placed:
//  * RoundRobin  — cyclic placement (the baseline the prototype used);
//  * LoadAware   — least-loaded by accumulated cost / cpu factor;
//  * Heft        — HEFT-style list scheduling minimizing estimated finish
//                  time, accounting for inter-module flow hops.
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"
#include "recipe/split.hpp"

namespace ifot::alloc {

/// Capabilities and capacity of one IFoT neuron module as seen by the
/// allocator.
struct ModuleInfo {
  NodeId id;
  std::string name;
  /// Relative CPU speed; 1.0 = one Raspberry Pi 2 core.
  double cpu_factor = 1.0;
  /// Cost weight already running on the module (from earlier recipes).
  double existing_load = 0.0;
  /// Names of sensors physically attached to the module.
  std::set<std::string> sensors;
  /// Names of actuators physically attached to the module.
  std::set<std::string> actuators;
};

/// A placement: task index -> module (parallel to TaskGraph::tasks).
struct Placement {
  std::vector<NodeId> task_module;

  [[nodiscard]] NodeId module_of(TaskId task) const {
    return task_module[task.value()];
  }
};

/// Summary metrics of a placement (used by benches and tests).
struct PlacementMetrics {
  double max_load = 0;        ///< heaviest module load (cost/cpu_factor)
  double imbalance = 0;       ///< max_load / mean_load (1.0 = perfect)
  std::size_t cross_edges = 0;  ///< flow edges crossing modules
  double est_makespan = 0;    ///< HEFT-style critical-path estimate
};

/// Strategy interface.
class Allocator {
 public:
  virtual ~Allocator() = default;

  /// Places every task. Fails when a sensor/actuator constraint cannot be
  /// satisfied by any module.
  virtual Result<Placement> allocate(const recipe::TaskGraph& graph,
                                     const std::vector<ModuleInfo>& modules) = 0;

  [[nodiscard]] virtual const char* name() const = 0;
};

class RoundRobinAllocator final : public Allocator {
 public:
  Result<Placement> allocate(const recipe::TaskGraph& graph,
                             const std::vector<ModuleInfo>& modules) override;
  [[nodiscard]] const char* name() const override { return "round_robin"; }
};

class LoadAwareAllocator final : public Allocator {
 public:
  Result<Placement> allocate(const recipe::TaskGraph& graph,
                             const std::vector<ModuleInfo>& modules) override;
  [[nodiscard]] const char* name() const override { return "load_aware"; }
};

class HeftAllocator final : public Allocator {
 public:
  /// `comm_cost` is the estimated per-hop flow latency relative to one
  /// unit of task cost on a 1.0-factor module.
  explicit HeftAllocator(double comm_cost = 0.5) : comm_cost_(comm_cost) {}

  Result<Placement> allocate(const recipe::TaskGraph& graph,
                             const std::vector<ModuleInfo>& modules) override;
  [[nodiscard]] const char* name() const override { return "heft"; }

 private:
  double comm_cost_;
};

/// Factory by name ("round_robin", "load_aware", "heft"); nullptr when
/// unknown.
std::unique_ptr<Allocator> make_allocator(const std::string& name);

/// Computes placement quality metrics.
PlacementMetrics evaluate_placement(const recipe::TaskGraph& graph,
                                    const std::vector<ModuleInfo>& modules,
                                    const Placement& placement,
                                    double comm_cost = 0.5);

}  // namespace ifot::alloc
