// Simulated network substituting for the paper's testbed wireless LAN.
//
// Model:
//  * LAN hosts share one half-duplex medium (802.11-style): each frame
//    occupies the channel for airtime = per_frame_overhead +
//    bits/bandwidth; concurrent transmissions serialize behind
//    channel-busy time (first-order contention model).
//  * Frames suffer propagation latency plus uniform jitter, and are lost
//    with probability loss_prob; the (reliable) transport retransmits with
//    exponential backoff, so loss shows up as latency, as with TCP.
//  * Remote ("cloud") hosts hang off point-to-point WAN links with their
//    own bandwidth/latency — used by the Fig.1 cloud-vs-local bench.
//  * Delivery per (src,dst) pair is FIFO, matching TCP ordering.
//
// The transport is message-oriented: one send() = one delivered datagram
// (the MQTT layer frames packets itself).
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "sim/simulator.hpp"

namespace ifot::net {

/// Parameters of the shared wireless LAN medium.
struct LanConfig {
  /// Usable bandwidth in bits per second (802.11n-era effective rate).
  double bandwidth_bps = 40e6;
  /// One-way propagation + stack latency.
  SimDuration propagation = from_millis(0.8);
  /// Uniform jitter added on top of propagation: U[0, jitter_max].
  SimDuration jitter_max = from_millis(1.5);
  /// Per-frame channel occupancy overhead (preamble, MAC/IP/TCP headers).
  SimDuration per_frame_overhead = from_millis(0.25);
  /// Extra bytes per frame counted against bandwidth (headers).
  std::size_t header_bytes = 78;
  /// Frame loss probability per attempt.
  double loss_prob = 0.0;
  /// Retransmission timeout base (doubles per retry, clamped).
  SimDuration rto = from_millis(20);
  /// Upper bound on the doubled retransmission backoff. Unbounded
  /// doubling overflows SimDuration past ~60 attempts.
  SimDuration max_backoff = from_seconds(10);
  /// Maximum transmission attempts before the frame is dropped.
  int max_attempts = 5;
};

/// Parameters of a point-to-point WAN link (for remote/cloud hosts).
struct WanConfig {
  double bandwidth_bps = 10e6;          ///< uplink-constrained path
  SimDuration propagation = from_millis(25);  ///< one-way WAN latency
  SimDuration jitter_max = from_millis(5);
  std::size_t header_bytes = 78;
  double loss_prob = 0.0;
  SimDuration rto = from_millis(200);
  /// Upper bound on the doubled retransmission backoff (see LanConfig).
  SimDuration max_backoff = from_seconds(30);
  int max_attempts = 5;
};

/// Handler invoked on the destination host when a datagram arrives.
using MessageHandler =
    std::function<void(NodeId from, const Bytes& payload)>;

/// The simulated network fabric. Owns all hosts and link state.
class Network {
 public:
  Network(sim::Simulator& sim, const LanConfig& lan, std::uint64_t seed);

  /// Adds a host on the shared wireless LAN; returns its id.
  NodeId add_host(std::string name);

  /// Adds a remote host reachable from every LAN host through a dedicated
  /// WAN link (models a cloud server).
  NodeId add_remote_host(std::string name, const WanConfig& wan);

  /// Installs the receive handler for a host (replaces any previous one).
  void set_handler(NodeId host, MessageHandler handler);

  /// Sends a datagram. Delivery is scheduled on the simulator; per
  /// (from,to) ordering is FIFO. Frames exceeding max_attempts are dropped
  /// (counted in counters()["drops"]).
  void send(NodeId from, NodeId to, Bytes payload);

  /// Sends several datagrams as ONE wire frame (scatter-gather): the
  /// medium is traversed once — one header + per-frame overhead charge
  /// for the whole batch — and the receiver's handler fires once per
  /// datagram, in order, splitting the batch back out. This is the
  /// transport half of egress write batching: N same-turn MQTT frames
  /// cost one channel occupancy instead of N.
  void send_frames(NodeId from, NodeId to,
                   std::vector<Bytes> frames) noexcept;

  [[nodiscard]] const std::string& host_name(NodeId id) const;
  [[nodiscard]] std::size_t host_count() const { return hosts_.size(); }

  /// Traffic counters: frames, bytes, retransmits, drops.
  [[nodiscard]] const Counters& counters() const { return counters_; }
  /// Per-delivery network latency (excludes queueing inside nodes).
  [[nodiscard]] const LatencyRecorder& delivery_latency() const {
    return delivery_latency_;
  }
  /// Time until which the shared LAN medium is occupied (diagnostics;
  /// regression hook for the retransmission-backoff clamp).
  [[nodiscard]] SimTime lan_busy_until() const { return lan_busy_until_; }

 private:
  struct Host {
    std::string name;
    MessageHandler handler;
    bool remote = false;
    WanConfig wan;           // valid when remote
    SimTime wan_busy_until = 0;  // WAN link serialization (per remote host)
  };

  /// Computes channel occupancy + delivery delay for one frame crossing
  /// the shared LAN or a WAN link; accounts retransmissions.
  struct PathOutcome {
    bool delivered = false;
    SimDuration delay = 0;  // from send() call to handler invocation
    int attempts = 1;
  };
  PathOutcome traverse_lan(std::size_t payload_bytes) noexcept;
  PathOutcome traverse_wan(Host& remote,
                           std::size_t payload_bytes) noexcept;

  sim::Simulator& sim_;  // NOLINT(cppcoreguidelines-avoid-const-or-ref-data-members)
  LanConfig lan_;
  Rng rng_;
  std::vector<Host> hosts_;
  SimTime lan_busy_until_ = 0;
  std::unordered_map<std::uint64_t, SimTime> pair_last_delivery_;
  Counters counters_;
  LatencyRecorder delivery_latency_;
};

}  // namespace ifot::net
