#include "net/network.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "common/audit.hpp"
#include "common/log.hpp"

namespace ifot::net {
namespace {

SimDuration airtime(std::size_t payload_bytes, std::size_t header_bytes,
                    double bandwidth_bps, SimDuration per_frame_overhead) {
  const double bits = static_cast<double>(payload_bytes + header_bytes) * 8.0;
  const double seconds = bits / bandwidth_bps;
  return per_frame_overhead + from_seconds(seconds);
}

std::uint64_t pair_key(NodeId from, NodeId to) {
  return (static_cast<std::uint64_t>(from.value()) << 32) | to.value();
}

/// Doubles `backoff` without overflowing SimDuration, clamped to `cap`.
SimDuration next_backoff(SimDuration backoff, SimDuration cap) {
  if (backoff > cap / 2) return cap;
  return backoff * 2;
}

}  // namespace

Network::Network(sim::Simulator& sim, const LanConfig& lan, std::uint64_t seed)
    : sim_(sim), lan_(lan), rng_(seed) {}

NodeId Network::add_host(std::string name) {
  hosts_.push_back(Host{std::move(name), nullptr, false, {}, 0});
  return NodeId{static_cast<NodeId::value_type>(hosts_.size() - 1)};
}

NodeId Network::add_remote_host(std::string name, const WanConfig& wan) {
  hosts_.push_back(Host{std::move(name), nullptr, true, wan, 0});
  return NodeId{static_cast<NodeId::value_type>(hosts_.size() - 1)};
}

void Network::set_handler(NodeId host, MessageHandler handler) {
  assert(host.value() < hosts_.size());
  hosts_[host.value()].handler = std::move(handler);
}

const std::string& Network::host_name(NodeId id) const {
  assert(id.value() < hosts_.size());
  return hosts_[id.value()].name;
}

Network::PathOutcome Network::traverse_lan(
    std::size_t payload_bytes) noexcept {
  PathOutcome out;
  const SimDuration air = airtime(payload_bytes, lan_.header_bytes,
                                  lan_.bandwidth_bps, lan_.per_frame_overhead);
  SimTime cursor = sim_.now();
  SimDuration backoff = lan_.rto;
  for (int attempt = 1; attempt <= lan_.max_attempts; ++attempt) {
    out.attempts = attempt;
    const SimTime start = std::max(cursor, lan_busy_until_);
    lan_busy_until_ = start + air;
    const SimTime tx_end = start + air;
    if (rng_.chance(lan_.loss_prob)) {
      counters_.add("lan.retransmits");
      cursor = tx_end + backoff;
      backoff = next_backoff(backoff, lan_.max_backoff);
      continue;
    }
    const SimDuration jitter = lan_.jitter_max > 0
        ? static_cast<SimDuration>(rng_.uniform() *
                                   static_cast<double>(lan_.jitter_max))
        : 0;
    out.delivered = true;
    out.delay = (tx_end + lan_.propagation + jitter) - sim_.now();
    return out;
  }
  return out;  // dropped
}

Network::PathOutcome Network::traverse_wan(
    Host& remote, std::size_t payload_bytes) noexcept {
  PathOutcome out;
  const WanConfig& wan = remote.wan;
  const SimDuration air = airtime(payload_bytes, wan.header_bytes,
                                  wan.bandwidth_bps, 0);
  SimTime cursor = sim_.now();
  SimDuration backoff = wan.rto;
  for (int attempt = 1; attempt <= wan.max_attempts; ++attempt) {
    out.attempts = attempt;
    const SimTime start = std::max(cursor, remote.wan_busy_until);
    remote.wan_busy_until = start + air;
    const SimTime tx_end = start + air;
    if (rng_.chance(wan.loss_prob)) {
      counters_.add("wan.retransmits");
      cursor = tx_end + backoff;
      backoff = next_backoff(backoff, wan.max_backoff);
      continue;
    }
    const SimDuration jitter = wan.jitter_max > 0
        ? static_cast<SimDuration>(rng_.uniform() *
                                   static_cast<double>(wan.jitter_max))
        : 0;
    out.delivered = true;
    out.delay = (tx_end + wan.propagation + jitter) - sim_.now();
    return out;
  }
  return out;
}

void Network::send(NodeId from, NodeId to, Bytes payload) {
  std::vector<Bytes> frames;
  frames.push_back(std::move(payload));
  send_frames(from, to, std::move(frames));
}

// static: alloc(deferred-delivery hand-off — one scheduled closure
// owning the frame batch plus per-pair FIFO first-touch; one event per
// batched datagram, the boundary of the data-plane proof. The drop
// path builds its log message only on an actual drop)
void Network::send_frames(NodeId from, NodeId to,
                          std::vector<Bytes> frames) noexcept {
  assert(from.value() < hosts_.size());
  assert(to.value() < hosts_.size());
  if (frames.empty()) return;
  std::size_t total_bytes = 0;
  for (const Bytes& f : frames) total_bytes += f.size();
  counters_.add("frames", frames.size());
  counters_.add("bytes", total_bytes);
  counters_.add("writes");
  if (frames.size() > 1) {
    counters_.add("batched_writes");
    counters_.add("coalesced_frames", frames.size());
  }

  Host& src = hosts_[from.value()];
  Host& dst = hosts_[to.value()];

  // A path touching a remote host crosses its WAN link; LAN<->LAN paths
  // cross the shared medium. The batch traverses as ONE wire frame: a
  // single header + per-frame overhead charge covers every datagram in it.
  PathOutcome outcome = (src.remote || dst.remote)
      ? traverse_wan(src.remote ? src : dst, total_bytes)
      : traverse_lan(total_bytes);

  if (!outcome.delivered) {
    counters_.add("drops", frames.size());
    IFOT_LOG(kWarn, "net") << "frame " << host_name(from) << "->"
                           << host_name(to) << " dropped after "
                           << outcome.attempts << " attempts";
    return;
  }

  // Enforce per-pair FIFO (TCP-like ordering): never deliver before the
  // previous datagram on the same pair.
  SimTime deliver_at = sim_.now() + outcome.delay;
  auto& last = pair_last_delivery_[pair_key(from, to)];
  deliver_at = std::max(deliver_at, last + 1);
  last = deliver_at;

  delivery_latency_.record(deliver_at - sim_.now());
  sim_.schedule_at(deliver_at,
                   [this, from, to, deliver_at,
                    fs = std::move(frames)]() mutable {
                     // The FIFO guarantee above only holds if the
                     // simulator fires us exactly when asked.
                     IFOT_AUDIT_ASSERT(sim_.now() == deliver_at,
                                       "delivery fired at the wrong time");
                     Host& h = hosts_[to.value()];
                     if (!h.handler) return;
                     // Split the batch back into datagrams: the handler
                     // fires once per frame, in queue order.
                     for (const Bytes& f : fs) h.handler(from, f);
                   });
}

}  // namespace ifot::net
