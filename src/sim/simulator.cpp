#include "sim/simulator.hpp"

#include <cassert>
#include <string>
#include <utility>

#include "common/audit.hpp"

namespace ifot::sim {

EventId Simulator::schedule_at(SimTime at, std::function<void()> fn) {
  assert(fn);
  if (at < now_) at = now_;
  const EventId id{next_seq_++};
  heap_.push(Entry{at, id.seq, std::move(fn)});
  return id;
}

EventId Simulator::schedule_after(SimDuration delay, std::function<void()> fn) {
  assert(delay >= 0);
  return schedule_at(now_ + delay, std::move(fn));
}

void Simulator::cancel(EventId id) {
  if (id.seq == 0 || id.seq >= next_seq_) return;
  cancelled_.insert(id.seq);
}

void Simulator::trace_event(SimTime at, std::uint64_t seq) {
  // FNV-1a over the 16 bytes of (at, seq). Cheap enough to stay on in
  // every build: ~20 integer ops per event.
  constexpr std::uint64_t kPrime = 0x100000001B3ULL;
  auto fold = [this](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      trace_hash_ ^= (v >> (8 * i)) & 0xFF;
      trace_hash_ *= kPrime;
    }
  };
  fold(static_cast<std::uint64_t>(at));
  fold(seq);
  ++executed_;
}

bool Simulator::pop_one() {
  while (!heap_.empty()) {
    // priority_queue::top is const; move is safe because we pop right away.
    Entry e = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    if (auto it = cancelled_.find(e.seq); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    // Virtual time only moves forward: schedule_at clamps to now, so a
    // popped event from the past means the heap ordering broke.
    IFOT_AUDIT_ASSERT(e.at >= now_,
                      "event fires at " + std::to_string(e.at) +
                          " but the clock already reached " +
                          std::to_string(now_));
    now_ = e.at;
    trace_event(e.at, e.seq);
    e.fn();
    return true;
  }
  return false;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && pop_one()) ++n;
  return n;
}

std::size_t Simulator::run_until(SimTime deadline) {
  std::size_t n = 0;
  while (!heap_.empty()) {
    // Skip cancelled heads so the deadline test sees a live event.
    while (!heap_.empty() &&
           cancelled_.count(heap_.top().seq) != 0) {
      cancelled_.erase(heap_.top().seq);
      heap_.pop();
    }
    if (heap_.empty() || heap_.top().at > deadline) break;
    // A nested run_until inside the handler may advance the clock past
    // our deadline, so audit the dispatched event's due time, not now_.
    const SimTime due = heap_.top().at;
    if (pop_one()) ++n;
    IFOT_AUDIT_ASSERT(due <= deadline,
                      "run_until dispatched an event past its deadline");
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

void PeriodicTimer::start(SimDuration initial_delay) {
  stop();
  running_ = true;
  pending_ = sim_.schedule_after(initial_delay, [this] { tick(); });
}

void PeriodicTimer::stop() {
  if (running_) {
    sim_.cancel(pending_);
    running_ = false;
  }
}

void PeriodicTimer::tick() {
  if (!running_) return;
  // Reschedule before invoking so the callback may call stop().
  pending_ = sim_.schedule_after(period_, [this] { tick(); });
  fn_();
}

}  // namespace ifot::sim
