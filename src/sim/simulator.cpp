#include "sim/simulator.hpp"

#include <bit>
#include <cassert>
#include <string>

#include "common/audit.hpp"

namespace ifot::sim {

Simulator::~Simulator() {
  // Every node — live, firing, or parked — goes back to the pool, and any
  // still-engaged callback releases its oversized-capture spill first, so
  // the NodePool's outstanding-block audit holds at teardown.
  for (EventNode* n : nodes_) {
    n->cb.destroy(pool_);
    n->~EventNode();
    pool_.deallocate(n, sizeof(EventNode));
  }
}

// static: alloc(node-pool warm-up: fresh event node + index-map growth;
// every node recycles through the free list thereafter — the scheduler
// is the boundary of the data-plane proof)
Simulator::EventNode* Simulator::acquire_node() {
  EventNode* n = free_nodes_;
  if (n != nullptr) {
    free_nodes_ = n->next;
    n->next = nullptr;
    return n;
  }
  // Warm-up only: a fresh node from the pool plus index-map growth;
  // every node recycles through the free list thereafter (the alloc
  // frontier is declared on the member declaration in the header).
  void* mem = pool_.allocate(sizeof(EventNode));
  n = new (mem) EventNode();
  n->idx = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(n);
  return n;
}

void Simulator::park_node(EventNode* n) {
  ++n->gen;  // every handle minted for the previous arming goes stale
  n->state = kStateFree;
  n->prev = nullptr;
  n->next = free_nodes_;
  free_nodes_ = n;
}

Simulator::EventNode* Simulator::begin_schedule(SimTime at) {
  if (at < now_) at = now_;
  EventNode* n = acquire_node();
  n->at = at;
  n->seq = next_seq_++;
  return n;
}

EventId Simulator::commit_schedule(EventNode* n) {
  enqueue_node(n);
  ++pending_;
  if (pending_ > occupancy_high_water_) occupancy_high_water_ = pending_;
  ++scheduled_count_;
  return id_of(n);
}

// static: alloc(far-future overflow heap growth; entries recycle in the
// vector's capacity at steady state)
void Simulator::enqueue_node(EventNode* n) {
  IFOT_AUDIT_ASSERT(n->at >= base_,
                    "event enqueued at " + std::to_string(n->at) +
                        " behind the wheel position " + std::to_string(base_));
  const std::uint64_t x = u(n->at) ^ u(base_);
  if ((x >> kWheelBits) != 0) {
    n->state = kStateOverflow;
    overflow_.push(OverflowEntry{n->at, n->seq, n->idx, n->gen});
    if (overflow_.size() > overflow_high_water_) {
      overflow_high_water_ = overflow_.size();
    }
    return;
  }
  const int level =
      x == 0 ? 0 : (static_cast<int>(std::bit_width(x)) - 1) / kSlotBits;
  const int slot = slot_index(n->at, level);
  n->state = kStateWheel;
  n->level = static_cast<std::uint8_t>(level);
  n->slot = static_cast<std::uint8_t>(slot);
  Slot& s = wheel_[level][slot];
  // Tail-append keeps each equal-timestamp run of a slot list
  // seq-ascending — that is the FIFO invariant determinism rests on
  // (see the header comment / DESIGN.md §4j). Different-timestamp
  // entries may legally sit out of seq order in a level >= 1 slot: an
  // overflow drain appends in (at, seq) order, so a later-scheduled
  // earlier-deadline entry precedes an earlier-scheduled later one, and
  // the cascade re-bins them by timestamp before they can ever share an
  // L0 tick.
  IFOT_AUDIT_ASSERT(
      ([&] {
        for (const EventNode* p = s.tail; p != nullptr; p = p->prev) {
          if (p->at == n->at) return p->seq < n->seq;
        }
        return true;
      }()),
      "wheel slot FIFO invariant broken: appending seq " +
          std::to_string(n->seq) + " behind a later equal-timestamp seq");
  n->prev = s.tail;
  n->next = nullptr;
  if (s.tail != nullptr) {
    s.tail->next = n;
  } else {
    s.head = n;
    occ_[level] |= std::uint64_t{1} << slot;
  }
  s.tail = n;
}

void Simulator::unlink_wheel(EventNode* n) {
  Slot& s = wheel_[n->level][n->slot];
  if (n->prev != nullptr) {
    n->prev->next = n->next;
  } else {
    s.head = n->next;
  }
  if (n->next != nullptr) {
    n->next->prev = n->prev;
  } else {
    s.tail = n->prev;
  }
  if (s.head == nullptr) occ_[n->level] &= ~(std::uint64_t{1} << n->slot);
  n->prev = nullptr;
  n->next = nullptr;
}

void Simulator::cascade(int level, int slot) {
  Slot& s = wheel_[level][slot];
  EventNode* n = s.head;
  s.head = nullptr;
  s.tail = nullptr;
  occ_[level] &= ~(std::uint64_t{1} << slot);
  while (n != nullptr) {
    EventNode* next = n->next;
    n->prev = nullptr;
    n->next = nullptr;
    enqueue_node(n);  // base_ advanced: re-hashes to a strictly lower level
    IFOT_AUDIT_ASSERT(n->state != kStateWheel || n->level < level,
                      "cascade failed to push an event to a lower level");
    n = next;
  }
}

void Simulator::drain_overflow() {
  // Pull every overflow entry whose 2^48-window the wheel has reached.
  // Entries pop in (at, seq) order, so the wheel appends stay FIFO; stale
  // entries (node generation moved on via cancel/rearm) are skipped.
  while (!overflow_.empty()) {
    const OverflowEntry e = overflow_.top();
    EventNode* n = nodes_[e.idx];
    if (n->gen != e.gen || n->state != kStateOverflow) {
      overflow_.pop();  // stale: the arming it described no longer exists
      continue;
    }
    if ((u(e.at) >> kWheelBits) > (u(base_) >> kWheelBits)) break;
    IFOT_AUDIT_ASSERT(e.at >= base_,
                      "overflow entry due at " + std::to_string(e.at) +
                          " behind the wheel position " +
                          std::to_string(base_));
    overflow_.pop();
    if (n->at < base_) n->at = base_;  // defensive; audit above fires first
    enqueue_node(n);
  }
}

void Simulator::advance_base_to(SimTime t) {
  IFOT_AUDIT_ASSERT(t >= base_, "wheel position may only move forward");
  const bool crossed_window = (u(base_) >> kWheelBits) != (u(t) >> kWheelBits);
  base_ = t;
  if (crossed_window) drain_overflow();
  // Eager cascade: empty the slot containing the new base at every level
  // >= 1 (top-down so nodes re-enqueued at intermediate levels are moved
  // again in the same sweep). This is what keeps tail-appends FIFO-safe.
  for (int level = kLevels - 1; level >= 1; --level) {
    const int slot = slot_index(t, level);
    if ((occ_[level] >> slot) & 1U) cascade(level, slot);
  }
}

Simulator::EventNode* Simulator::next_due(SimTime deadline) {
  for (;;) {
    bool advanced = false;
    for (int level = 0; level < kLevels; ++level) {
      const int cur = slot_index(base_, level);
      IFOT_AUDIT_ASSERT(
          (occ_[level] & ~(~std::uint64_t{0} << cur)) == 0,
          "wheel holds events behind the current position at level " +
              std::to_string(level));
      const std::uint64_t occ = occ_[level] & (~std::uint64_t{0} << cur);
      if (occ == 0) continue;
      const int slot = std::countr_zero(occ);
      if (level == 0) {
        // One L0 slot holds exactly one tick's worth of events, already
        // in seq order: detach the head.
        const SimTime t =
            static_cast<SimTime>((u(base_) & ~std::uint64_t{kSlots - 1}) |
                                 static_cast<std::uint64_t>(slot));
        if (t > deadline) return nullptr;
        base_ = t;
        Slot& s = wheel_[0][slot];
        EventNode* n = s.head;
        s.head = n->next;
        if (s.head != nullptr) {
          s.head->prev = nullptr;
        } else {
          s.tail = nullptr;
          occ_[0] &= ~(std::uint64_t{1} << slot);
        }
        n->next = nullptr;
        --pending_;
        return n;
      }
      // Level >= 1: the earliest occupied slot across all levels (higher
      // level slots ahead of base start later than any slot in the
      // current window). Advance the wheel to its start, cascading it
      // into finer slots, then rescan from level 0.
      IFOT_AUDIT_ASSERT(slot > cur,
                        "eager-cascade invariant broken: base slot occupied "
                        "at level " +
                            std::to_string(level));
      const std::uint64_t span = std::uint64_t{1} << (kSlotBits * (level + 1));
      const SimTime slot_start = static_cast<SimTime>(
          (u(base_) & ~(span - 1)) |
          (static_cast<std::uint64_t>(slot) << (kSlotBits * level)));
      if (slot_start > deadline) return nullptr;
      advance_base_to(slot_start);
      advanced = true;
      break;
    }
    if (advanced) continue;
    // Wheel empty: anything left lives past the 2^48 horizon. Jump the
    // wheel to the earliest valid overflow entry; the window crossing
    // drains it (and its cohort) back into the wheel, then rescan.
    bool jumped = false;
    while (!overflow_.empty()) {
      const OverflowEntry e = overflow_.top();
      const EventNode* n = nodes_[e.idx];
      if (n->gen != e.gen || n->state != kStateOverflow) {
        overflow_.pop();
        continue;
      }
      if (e.at > deadline) return nullptr;
      advance_base_to(e.at);
      jumped = true;
      break;
    }
    if (!jumped) return nullptr;
  }
}

void Simulator::fire(EventNode* n) {
  // Virtual time only moves forward: schedule_at clamps to now, so an
  // event due in the past means the wheel ordering broke.
  IFOT_AUDIT_ASSERT(n->at >= now_,
                    "event fires at " + std::to_string(n->at) +
                        " but the clock already reached " +
                        std::to_string(now_));
  now_ = n->at;
  trace_event(n->at, n->seq);
  n->state = kStateFiring;
  const std::uint32_t gen = n->gen;
  n->cb.invoke();
  // The callback may have rearmed its own node (gen moved on) — then the
  // node is live again with its callback intact and must not be parked.
  if (n->gen == gen && n->state == kStateFiring) {
    n->cb.destroy(pool_);
    park_node(n);
  }
}

Simulator::EventNode* Simulator::resolve(EventId id) const {
  const auto pos = static_cast<std::uint32_t>(id.handle & 0xFFFFFFFFU);
  if (pos == 0 || pos > nodes_.size()) return nullptr;
  EventNode* n = nodes_[pos - 1];
  if (n->gen != static_cast<std::uint32_t>(id.handle >> 32)) return nullptr;
  if (n->state == kStateFree) return nullptr;
  return n;
}

void Simulator::cancel(EventId id) {
  EventNode* n = resolve(id);
  if (n == nullptr) return;
  if (n->state == kStateFiring) return;  // its own callback can't cancel it
  if (n->state == kStateWheel) unlink_wheel(n);
  // kStateOverflow: the heap entry goes stale via the generation bump in
  // park_node and is skipped when it reaches the top.
  n->cb.destroy(pool_);
  park_node(n);
  --pending_;
  ++cancelled_count_;
}

EventId Simulator::rearm(EventId id, SimTime at) {
  EventNode* n = resolve(id);
  if (n == nullptr) return EventId{};
  if (at < now_) at = now_;
  switch (n->state) {
    case kStateWheel:
      unlink_wheel(n);
      break;
    case kStateOverflow:
      break;  // stale heap entry, skipped at pop time
    case kStateFiring:
      // Revived from inside its own callback: it counts as pending again.
      ++pending_;
      if (pending_ > occupancy_high_water_) occupancy_high_water_ = pending_;
      break;
    default:
      return EventId{};
  }
  ++n->gen;  // the old handle dies with the old arming
  n->at = at;
  n->seq = next_seq_++;
  enqueue_node(n);
  ++rearmed_count_;
  return id_of(n);
}

void Simulator::trace_event(SimTime at, std::uint64_t seq) {
  // FNV-1a over the 16 bytes of (at, seq). Cheap enough to stay on in
  // every build: ~20 integer ops per event.
  constexpr std::uint64_t kPrime = 0x100000001B3ULL;
  auto fold = [this](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      trace_hash_ ^= (v >> (8 * i)) & 0xFF;
      trace_hash_ *= kPrime;
    }
  };
  fold(static_cast<std::uint64_t>(at));
  fold(seq);
  ++executed_;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events) {
    EventNode* e = next_due(std::numeric_limits<SimTime>::max());
    if (e == nullptr) break;
    fire(e);
    ++n;
  }
  return n;
}

std::size_t Simulator::run_until(SimTime deadline) {
  std::size_t n = 0;
  for (;;) {
    EventNode* e = next_due(deadline);
    if (e == nullptr) break;
    // A nested run_until inside the handler may advance the clock past
    // our deadline, so audit the dispatched event's due time, not now_.
    IFOT_AUDIT_ASSERT(e->at <= deadline,
                      "run_until dispatched an event past its deadline");
    fire(e);
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

SchedulerStats Simulator::stats() const {
  SchedulerStats s;
  s.scheduled = scheduled_count_;
  s.cancelled = cancelled_count_;
  s.rearmed = rearmed_count_;
  s.fired = executed_;
  s.pending = pending_;
  s.occupancy_high_water = occupancy_high_water_;
  s.overflow_high_water = overflow_high_water_;
  s.nodes_created = nodes_.size();
  s.pool_retained_bytes = pool_.retained_bytes();
  return s;
}

void PeriodicTimer::start(SimDuration initial_delay) {
  stop();
  running_ = true;
  pending_ = sim_.schedule_after(initial_delay, [this] { tick(); });
}

void PeriodicTimer::stop() {
  if (running_) {
    sim_.cancel(pending_);
    running_ = false;
  }
}

void PeriodicTimer::tick() {
  if (!running_) return;
  // Rearm before invoking so the callback may call stop(). The node that
  // is firing right now is revived in place — same callback, fresh seq —
  // so steady-state ticking never allocates.
  EventId next = sim_.rearm_after(pending_, period_);
  if (!next.valid()) next = sim_.schedule_after(period_, [this] { tick(); });
  pending_ = next;
  fn_();
}

}  // namespace ifot::sim
