// Deterministic discrete-event simulation engine.
//
// This is the substrate substituting for the paper's physical testbed
// (six Raspberry Pi 2 modules on a wireless LAN): all node CPUs, network
// transfers and sensor timers are events on one virtual clock, so every
// experiment is exactly reproducible.
//
// The event queue is a hierarchical timing wheel (kLevels levels of
// kSlots power-of-two slots each, covering 2^48 ns of virtual time ~ 3.2
// days; anything further rides a far-future overflow heap until its
// 2^48-window comes around). Events are intrusive nodes drawn from a
// pool::NodePool, callbacks live in a small-buffer slot inside the node
// (typical captures — `this` plus a couple of words — never allocate),
// and handles are generation-stamped so cancel/rearm are O(1) with no
// tombstone bookkeeping:
//
//   schedule_after / schedule_at   O(1)
//   cancel                         O(1)  (doubly-linked unlink)
//   rearm                          O(1)  (relink, callback kept in place)
//   next event                     O(levels) worst case via occupancy
//                                  bitmaps, amortised O(1)
//
// Determinism rules:
//  * events at equal timestamps fire in scheduling order (FIFO tiebreak);
//  * all randomness flows through seeded ifot::Rng instances;
//  * wall-clock time never enters the simulation.
//
// The FIFO tiebreak survives slot cascades because of the eager-cascade
// invariant: whenever the wheel position (base_) advances, the slot
// containing base_ at every level >= 1 is cascaded down immediately, so
// at any moment the slot a new event hashes to either is empty or holds
// only events scheduled earlier (lower seq). Plain tail-append therefore
// keeps every slot list strictly seq-ascending, cascades preserve list
// order, and the overflow heap drains in (at, seq) order — see
// DESIGN.md §4j for the full argument.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <new>
#include <queue>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/audit.hpp"
#include "common/pool.hpp"
#include "common/types.hpp"

namespace ifot::sim {

/// Handle identifying a scheduled event; usable to cancel or rearm it.
/// Packs the owning node's index (low 32 bits, offset by one so a
/// default-constructed handle is never valid) and the node's generation
/// at scheduling time (high 32 bits): a handle goes stale the moment its
/// event fires, is cancelled, or is rearmed.
struct EventId {
  std::uint64_t handle = 0;
  [[nodiscard]] bool valid() const { return handle != 0; }
  friend bool operator==(EventId, EventId) = default;
};

/// Scheduler occupancy / churn counters, surfaced in determinism trace
/// dumps alongside the broker's $SYS ledger.
struct SchedulerStats {
  std::uint64_t scheduled = 0;   ///< schedule_at/schedule_after calls
  std::uint64_t cancelled = 0;   ///< cancels that hit a live event
  std::uint64_t rearmed = 0;     ///< rearms that revived/relinked a node
  std::uint64_t fired = 0;       ///< events executed (== events_executed)
  std::size_t pending = 0;       ///< live events right now
  std::size_t occupancy_high_water = 0;  ///< max simultaneous live events
  std::size_t overflow_high_water = 0;   ///< max far-future heap entries
  std::size_t nodes_created = 0;         ///< distinct pooled event nodes
  std::size_t pool_retained_bytes = 0;   ///< NodePool footprint (nodes +
                                         ///< oversized-capture spill)
};

/// Discrete-event simulator: a virtual clock plus a timing-wheel queue.
class Simulator {
 public:
  Simulator() = default;
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute virtual time `at` (clamped to now).
  template <typename F>
  EventId schedule_at(SimTime at, F&& fn) {
    EventNode* n = begin_schedule(at);
    n->cb.emplace(pool_, std::forward<F>(fn));
    return commit_schedule(n);
  }

  /// Schedules `fn` to run `delay` after the current time.
  template <typename F>
  EventId schedule_after(SimDuration delay, F&& fn) {
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Cancels a pending event. Cancelling an already-fired, already-
  /// cancelled, or unknown event is a no-op (the generation stamp makes
  /// stale handles inert — no tombstones, no pending() drift).
  void cancel(EventId id);

  /// Moves a pending event to fire at `at` (clamped to now), keeping its
  /// stored callback: O(1), no closure churn. Returns the replacement
  /// handle, or an invalid EventId when `id` is stale — callers fall
  /// back to schedule_at with a fresh closure. Rearming the event that
  /// is currently firing (from inside its own callback) revives it in
  /// place; this is how self-re-arming timers avoid one allocation per
  /// period. Consumes exactly one sequence number, same as the
  /// cancel-then-schedule pattern it replaces, so trace hashes are
  /// unchanged by the migration.
  EventId rearm(EventId id, SimTime at);

  /// rearm() with a delay relative to the current time.
  EventId rearm_after(EventId id, SimDuration delay) {
    return rearm(id, now_ + delay);
  }

  /// Runs events until the queue is empty or `max_events` fired.
  /// Returns the number of events executed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Runs events with timestamp <= deadline; afterwards now() == deadline
  /// (even if the queue still holds later events). Returns events executed.
  std::size_t run_until(SimTime deadline);

  /// Number of pending (non-cancelled) events.
  [[nodiscard]] std::size_t pending() const { return pending_; }

  /// Rolling FNV-1a hash over the ordered event trace (each fired event's
  /// timestamp and scheduling sequence number). Two runs of the same
  /// scenario must end with identical hashes; scripts/check_determinism.sh
  /// turns that into a CI gate. Divergence means wall-clock time, an
  /// unseeded random source, or address-dependent iteration order leaked
  /// into the event schedule.
  [[nodiscard]] std::uint64_t trace_hash() const { return trace_hash_; }
  /// Total events executed (paired with trace_hash in determinism traces).
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Occupancy / churn counters for $SYS-style trace dumps.
  [[nodiscard]] SchedulerStats stats() const;

 private:
  static constexpr int kSlotBits = 6;
  static constexpr int kSlots = 1 << kSlotBits;       // 64 slots per level
  static constexpr int kLevels = 8;
  static constexpr int kWheelBits = kSlotBits * kLevels;  // 48-bit horizon

  enum : std::uint8_t {
    kStateFree = 0,      // parked on the free list
    kStateWheel = 1,     // linked into a wheel slot
    kStateOverflow = 2,  // beyond the 2^48 horizon, in the overflow heap
    kStateFiring = 3,    // detached, callback executing right now
  };

  /// Type-erased callback storage pinned inside an EventNode. Captures up
  /// to kInlineBytes live in the node itself; larger ones spill to a
  /// pooled block (recycled, so steady-state stays allocation-free).
  class Callback {
   public:
    static constexpr std::size_t kInlineBytes = 32;

    Callback() = default;
    Callback(const Callback&) = delete;
    Callback& operator=(const Callback&) = delete;

    template <typename F>
    void emplace(pool::NodePool& pool, F&& fn) {
      using Fn = std::decay_t<F>;
      static_assert(std::is_invocable_v<Fn&>,
                    "scheduled callback must be invocable with no args");
      static_assert(alignof(Fn) <= alignof(std::max_align_t));
      IFOT_AUDIT_ASSERT(ops_ == nullptr,
                        "callback slot emplaced while still engaged");
      if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= kAlign) {
        ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(fn));
        ops_ = &kInlineOps<Fn>;
      } else {
        // static: alloc(oversized-capture spill: pooled block, recycled)
        void* p = pool.allocate(sizeof(Fn));
        ::new (p) Fn(std::forward<F>(fn));
        *reinterpret_cast<void**>(static_cast<void*>(buf_)) = p;
        ops_ = &kHeapOps<Fn>;
      }
    }

    void invoke() { ops_->invoke(buf_); }
    void destroy(pool::NodePool& pool) {
      if (ops_ != nullptr) {
        ops_->destroy(buf_, pool);
        ops_ = nullptr;
      }
    }
    [[nodiscard]] bool engaged() const { return ops_ != nullptr; }

   private:
    static constexpr std::size_t kAlign = alignof(std::max_align_t);

    struct Ops {
      void (*invoke)(unsigned char* buf);
      void (*destroy)(unsigned char* buf, pool::NodePool& pool);
    };

    template <typename Fn>
    static void invoke_inline(unsigned char* buf) {
      (*std::launder(reinterpret_cast<Fn*>(buf)))();
    }
    template <typename Fn>
    static void destroy_inline(unsigned char* buf, pool::NodePool&) {
      std::launder(reinterpret_cast<Fn*>(buf))->~Fn();
    }
    template <typename Fn>
    static void invoke_heap(unsigned char* buf) {
      (*static_cast<Fn*>(
          *reinterpret_cast<void**>(static_cast<void*>(buf))))();
    }
    template <typename Fn>
    static void destroy_heap(unsigned char* buf, pool::NodePool& pool) {
      void* p = *reinterpret_cast<void**>(static_cast<void*>(buf));
      static_cast<Fn*>(p)->~Fn();
      pool.deallocate(p, sizeof(Fn));
    }

    template <typename Fn>
    inline static constexpr Ops kInlineOps{&invoke_inline<Fn>,
                                           &destroy_inline<Fn>};
    template <typename Fn>
    inline static constexpr Ops kHeapOps{&invoke_heap<Fn>, &destroy_heap<Fn>};

    const Ops* ops_ = nullptr;
    alignas(kAlign) unsigned char buf_[kInlineBytes];
  };

  /// Intrusive wheel node; pooled, pinned for the simulator's lifetime.
  struct EventNode {
    EventNode* prev = nullptr;
    EventNode* next = nullptr;
    SimTime at = 0;
    std::uint64_t seq = 0;
    std::uint32_t gen = 1;  // starts at 1 so a packed handle is never 0
    std::uint32_t idx = 0;  // position in nodes_ (stable)
    std::uint8_t state = kStateFree;
    std::uint8_t level = 0;
    std::uint8_t slot = 0;
    Callback cb;
  };

  struct Slot {
    EventNode* head = nullptr;
    EventNode* tail = nullptr;
  };

  /// Far-future heap entry; left stale in place on cancel/rearm and
  /// skipped at pop time when the node's generation moved on.
  struct OverflowEntry {
    SimTime at;
    std::uint64_t seq;
    std::uint32_t idx;
    std::uint32_t gen;
  };
  struct OverflowLater {
    bool operator()(const OverflowEntry& a, const OverflowEntry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  static std::uint64_t u(SimTime t) { return static_cast<std::uint64_t>(t); }
  static int slot_index(SimTime t, int level) {
    return static_cast<int>((u(t) >> (kSlotBits * level)) & (kSlots - 1));
  }
  static EventId id_of(const EventNode* n) {
    return EventId{(static_cast<std::uint64_t>(n->gen) << 32) |
                   (static_cast<std::uint64_t>(n->idx) + 1)};
  }

  EventNode* begin_schedule(SimTime at);   // clamp, acquire node, stamp seq
  EventId commit_schedule(EventNode* n);   // enqueue + occupancy bookkeeping
  EventNode* acquire_node();               // sanctioned warm-up alloc site
  void park_node(EventNode* n);            // bump gen, push on free list
  void enqueue_node(EventNode* n);         // sanctioned overflow alloc site
  void unlink_wheel(EventNode* n);
  void cascade(int level, int slot);
  void drain_overflow();                   // pull current-window entries in
  void advance_base_to(SimTime t);
  EventNode* next_due(SimTime deadline);   // detach earliest event <= deadline
  void fire(EventNode* n);
  EventNode* resolve(EventId id) const;    // nullptr when stale/unknown

  void trace_event(SimTime at, std::uint64_t seq);

  SimTime now_ = 0;   // observable clock (run_until may lazily exceed base_)
  SimTime base_ = 0;  // wheel position: every event < base_ already fired
  std::uint64_t next_seq_ = 1;
  std::uint64_t trace_hash_ = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
  std::uint64_t executed_ = 0;
  std::uint64_t scheduled_count_ = 0;
  std::uint64_t cancelled_count_ = 0;
  std::uint64_t rearmed_count_ = 0;
  std::size_t pending_ = 0;
  std::size_t occupancy_high_water_ = 0;
  std::size_t overflow_high_water_ = 0;

  Slot wheel_[kLevels][kSlots] = {};
  std::uint64_t occ_[kLevels] = {};  // per-level slot occupancy bitmaps

  pool::NodePool pool_;              // event nodes + oversized-capture spill
  std::vector<EventNode*> nodes_;    // idx -> node (stable across reuse)
  EventNode* free_nodes_ = nullptr;  // parked nodes, singly linked via next
  std::priority_queue<OverflowEntry, std::vector<OverflowEntry>, OverflowLater>
      overflow_;
};

/// Repeating timer built on Simulator: fires `fn` every `period`, starting
/// at `start` (absolute). Used for fixed-rate sensor sampling. Steady-state
/// ticks rearm the same event node in place: no allocation per period.
class PeriodicTimer {
 public:
  PeriodicTimer(Simulator& sim, SimDuration period, std::function<void()> fn)
      : sim_(sim), period_(period), fn_(std::move(fn)) {}
  ~PeriodicTimer() { stop(); }
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// Starts ticking; first tick at now + initial_delay.
  void start(SimDuration initial_delay = 0);
  /// Stops ticking; pending tick is cancelled.
  void stop();
  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] SimDuration period() const { return period_; }

 private:
  void tick();

  Simulator& sim_;  // NOLINT(cppcoreguidelines-avoid-const-or-ref-data-members)
  SimDuration period_;
  std::function<void()> fn_;
  EventId pending_{};
  bool running_ = false;
};

}  // namespace ifot::sim
