// Deterministic discrete-event simulation engine.
//
// This is the substrate substituting for the paper's physical testbed
// (six Raspberry Pi 2 modules on a wireless LAN): all node CPUs, network
// transfers and sensor timers are events on one virtual clock, so every
// experiment is exactly reproducible.
//
// Determinism rules:
//  * events at equal timestamps fire in scheduling order (FIFO tiebreak);
//  * all randomness flows through seeded ifot::Rng instances;
//  * wall-clock time never enters the simulation.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"

namespace ifot::sim {

/// Handle identifying a scheduled event; usable to cancel it.
struct EventId {
  std::uint64_t seq = 0;
  friend bool operator==(EventId, EventId) = default;
};

/// Discrete-event simulator: a virtual clock plus an event queue.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute virtual time `at` (clamped to now).
  // static: alloc(event hand-off: closure state + heap growth; the
  // simulator event queue is the boundary of the data-plane proof)
  EventId schedule_at(SimTime at, std::function<void()> fn);

  /// Schedules `fn` to run `delay` after the current time.
  EventId schedule_after(SimDuration delay, std::function<void()> fn);

  /// Cancels a pending event. Cancelling an already-fired or unknown event
  /// is a no-op.
  void cancel(EventId id);

  /// Runs events until the queue is empty or `max_events` fired.
  /// Returns the number of events executed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Runs events with timestamp <= deadline; afterwards now() == deadline
  /// (even if the queue still holds later events). Returns events executed.
  std::size_t run_until(SimTime deadline);

  /// Number of pending (non-cancelled) events.
  [[nodiscard]] std::size_t pending() const {
    return heap_.size() - cancelled_.size();
  }

  /// Rolling FNV-1a hash over the ordered event trace (each fired event's
  /// timestamp and scheduling sequence number). Two runs of the same
  /// scenario must end with identical hashes; scripts/check_determinism.sh
  /// turns that into a CI gate. Divergence means wall-clock time, an
  /// unseeded random source, or address-dependent iteration order leaked
  /// into the event schedule.
  [[nodiscard]] std::uint64_t trace_hash() const { return trace_hash_; }
  /// Total events executed (paired with trace_hash in determinism traces).
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  bool pop_one();  // fires the earliest event; false when queue empty

  void trace_event(SimTime at, std::uint64_t seq);

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t trace_hash_ = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<std::uint64_t> cancelled_;
};

/// Repeating timer built on Simulator: fires `fn` every `period`, starting
/// at `start` (absolute). Used for fixed-rate sensor sampling.
class PeriodicTimer {
 public:
  PeriodicTimer(Simulator& sim, SimDuration period, std::function<void()> fn)
      : sim_(sim), period_(period), fn_(std::move(fn)) {}
  ~PeriodicTimer() { stop(); }
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// Starts ticking; first tick at now + initial_delay.
  void start(SimDuration initial_delay = 0);
  /// Stops ticking; pending tick is cancelled.
  void stop();
  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] SimDuration period() const { return period_; }

 private:
  void tick();

  Simulator& sim_;  // NOLINT(cppcoreguidelines-avoid-const-or-ref-data-members)
  SimDuration period_;
  std::function<void()> fn_;
  EventId pending_{};
  bool running_ = false;
};

}  // namespace ifot::sim
