#!/usr/bin/env bash
# Determinism gate: the simulation must be bit-for-bit repeatable. Builds
# the example scenarios plus the dedicated determinism scenario, runs each
# binary twice, and fails on any output divergence -- every scenario ends
# by printing the simulator's rolling event-trace hash (at,seq of every
# fired event) and its counter ledgers, so a single reordered event or
# diverging counter flips the diff.
#
# --self-test additionally runs the nondet fixture (prints
# std::random_device entropy) twice and requires the outputs to DIFFER,
# proving the gate detects divergence at all.
#
# Usage: scripts/check_determinism.sh [--self-test]
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-determinism}"
SCENARIOS=(
  examples/quickstart
  examples/elderly_monitoring
  examples/home_appliance_control
  examples/mobility_support
  examples/smart_factory
  examples/federated_city
  tests/determinism_scenario
)

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
targets=(nondet_fixture)
for s in "${SCENARIOS[@]}"; do
  targets+=("$(basename "$s")")
done
cmake --build "$BUILD_DIR" -j "$(nproc)" --target "${targets[@]}"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

fail=0
for s in "${SCENARIOS[@]}"; do
  bin="$BUILD_DIR/$s"
  name="$(basename "$s")"
  "$bin" > "$tmp/$name.1" 2>&1 || { echo "FAIL: $name exited non-zero"; fail=1; continue; }
  "$bin" > "$tmp/$name.2" 2>&1 || { echo "FAIL: $name exited non-zero on rerun"; fail=1; continue; }
  if ! diff -u "$tmp/$name.1" "$tmp/$name.2" > "$tmp/$name.diff"; then
    echo "FAIL: $name diverged between two runs:"
    sed 's/^/    /' "$tmp/$name.diff"
    fail=1
  else
    hash_line="$(grep -o 'trace_hash=[0-9a-f]*' "$tmp/$name.1" | head -1 || true)"
    echo "OK: $name repeatable (${hash_line:-no trace line})"
  fi
done

if [ "${1:-}" = "--self-test" ]; then
  "$BUILD_DIR/tests/nondet_fixture" > "$tmp/nd.1"
  "$BUILD_DIR/tests/nondet_fixture" > "$tmp/nd.2"
  if diff -q "$tmp/nd.1" "$tmp/nd.2" > /dev/null; then
    echo "FAIL: self-test -- nondet fixture produced identical runs;"
    echo "      the gate could not have detected real divergence"
    fail=1
  else
    echo "OK: self-test -- gate detects divergence (nondet fixture differed)"
  fi
fi

if [ "$fail" -eq 0 ]; then
  echo "check_determinism: OK"
fi
exit "$fail"
