#!/usr/bin/env bash
# Configures an audit build (-DIFOT_AUDIT=ON) in build-audit/ and runs the
# full test suite under it. IFOT_AUDIT_ASSERT re-checks structural
# invariants (broker session maps vs subscription trie, dedup-set bounds,
# payload byte accounting, packet-id uniqueness, simulator time
# monotonicity) after every mutation, so this run turns the whole suite
# into a state-machine checker.
#
# Usage: scripts/check_audit.sh [ctest -R filter]
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=build-audit
cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DIFOT_AUDIT=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"

cd "$BUILD_DIR"
if [ "$#" -gt 0 ]; then
  ctest --output-on-failure --no-tests=error -j "$(nproc)" -R "$1"
else
  ctest --output-on-failure --no-tests=error -j "$(nproc)"
fi
