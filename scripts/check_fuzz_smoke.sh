#!/usr/bin/env bash
# Builds the libFuzzer harness (-DIFOT_FUZZ=ON, requires Clang), generates
# the seed corpus from encode() round-trips, and runs a short smoke pass
# (small iteration budget) so CI catches decoder crashes without a long
# fuzzing campaign. Longer campaigns: re-run the printed command with a
# bigger -runs / no -max_total_time.
#
# Exits 0 with a SKIP notice when no clang++ is installed.
#
# Usage: scripts/check_fuzz_smoke.sh [runs]
set -euo pipefail

cd "$(dirname "$0")/.."

RUNS="${1:-20000}"

CXX_BIN="${FUZZ_CXX:-}"
if [ -z "$CXX_BIN" ]; then
  for candidate in clang++ clang++-18 clang++-17 clang++-16 clang++-15 \
                   clang++-14; do
    if command -v "$candidate" >/dev/null 2>&1; then
      CXX_BIN="$candidate"
      break
    fi
  done
fi
if [ -z "$CXX_BIN" ]; then
  echo "SKIP: clang++ not found; libFuzzer needs Clang (or set FUZZ_CXX)" >&2
  exit 0
fi

BUILD_DIR=build-fuzz
cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_COMPILER="$CXX_BIN" \
  -DIFOT_FUZZ=ON
cmake --build "$BUILD_DIR" -j "$(nproc)" \
  --target fuzz_packet_decode --target make_corpus

CORPUS_DIR="$BUILD_DIR/corpus/packet_decode"
"$BUILD_DIR/fuzz/make_corpus" "$CORPUS_DIR"

echo "fuzzing mqtt::decode for $RUNS runs..."
"$BUILD_DIR/fuzz/fuzz_packet_decode" -runs="$RUNS" -max_total_time=60 \
    -print_final_stats=1 "$CORPUS_DIR"
echo "fuzz smoke: no crashes"
