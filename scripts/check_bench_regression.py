#!/usr/bin/env python3
"""Bench regression gate: diff a fresh BENCH_<name>.json against the
committed baseline and fail on throughput regressions.

Every bench binary dumps a flat {"BM_name/args/counter": value} JSON
(see bench/bench_json.hpp). This gate compares the throughput counters
(by default every metric ending in /routed_msgs_per_sec) between the
committed baseline and a fresh run, and fails when any of them dropped
by more than --threshold (default 20%).

Faster-than-baseline results never fail; CI machines differ, so the
gate is a coarse backstop against order-of-magnitude regressions (an
accidentally disabled route cache, a reintroduced per-publish sort),
not a precision benchmark. Refresh the baseline deliberately with:

    ./build/bench/bench_fanout --benchmark_min_time=0.2
    cp BENCH_fanout.json bench/baselines/BENCH_fanout.json

Usage:
    check_bench_regression.py --baseline bench/baselines/BENCH_fanout.json \
        --current build/bench/BENCH_fanout.json [--threshold 0.20]
"""

import argparse
import json
import sys


def load_metrics(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read bench json {path}: {e}")
    if not isinstance(data, dict):
        sys.exit(f"error: {path} is not a flat metric map")
    return {k: float(v) for k, v in data.items()
            if isinstance(v, (int, float))}


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True,
                    help="committed baseline BENCH json")
    ap.add_argument("--current", required=True,
                    help="freshly produced BENCH json")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="allowed fractional drop (default 0.20 = 20%%)")
    ap.add_argument("--metric-suffix", default="/routed_msgs_per_sec",
                    help="which counters to compare (metric-name suffix)")
    args = ap.parse_args()

    baseline = load_metrics(args.baseline)
    current = load_metrics(args.current)

    watched = {k: v for k, v in baseline.items()
               if k.endswith(args.metric_suffix) and v > 0}
    if not watched:
        sys.exit(f"error: baseline {args.baseline} has no metrics ending in "
                 f"'{args.metric_suffix}' — gate would pass vacuously")

    failures = []
    for name, base_value in sorted(watched.items()):
        if name not in current:
            # A renamed or deleted benchmark must update the baseline,
            # not silently shrink the gate's coverage.
            failures.append(f"{name}: present in baseline but missing from "
                            f"current run")
            continue
        cur_value = current[name]
        change = (cur_value - base_value) / base_value
        status = "OK"
        if change < -args.threshold:
            status = "REGRESSION"
            failures.append(f"{name}: {base_value:.3g} -> {cur_value:.3g} "
                            f"({change:+.1%}, allowed -{args.threshold:.0%})")
        print(f"  [{status}] {name}: {base_value:.3g} -> {cur_value:.3g} "
              f"({change:+.1%})")

    if failures:
        print(f"\n{len(failures)} bench regression(s) beyond "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nall {len(watched)} throughput metrics within "
          f"{args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
