#!/usr/bin/env python3
"""Bench regression gate: diff fresh BENCH_<name>.json dumps against the
committed baselines and fail on throughput regressions.

Every bench binary dumps a flat {"BM_name/args/counter": value} JSON
(see bench/bench_json.hpp). This gate compares the throughput counters
(by default every metric ending in /routed_msgs_per_sec) between the
committed baseline and a fresh run, and fails when any of them dropped
by more than --threshold (default 20%).

Faster-than-baseline results never fail; CI machines differ, so the
gate is a coarse backstop against order-of-magnitude regressions (an
accidentally disabled route cache, a reintroduced per-publish sort),
not a precision benchmark. Refresh a baseline deliberately with:

    ./build/bench/bench_fanout --benchmark_min_time=0.2
    cp BENCH_fanout.json bench/baselines/BENCH_fanout.json

Usage (single file):
    check_bench_regression.py --baseline bench/baselines/BENCH_fanout.json \
        --current build/bench/BENCH_fanout.json [--threshold 0.20]

Usage (directory mode — gate EVERY committed baseline at once):
    check_bench_regression.py --baseline-dir bench/baselines \
        --current-dir build/bench [--threshold 0.20]

Directory mode walks every BENCH_*.json in --baseline-dir and requires
a matching fresh dump in --current-dir: a baseline whose bench was not
run (or was renamed) fails the gate rather than silently shrinking its
coverage.
"""

import argparse
import json
import os
import sys


def load_metrics(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read bench json {path}: {e}")
    if not isinstance(data, dict):
        sys.exit(f"error: {path} is not a flat metric map")
    return {k: float(v) for k, v in data.items()
            if isinstance(v, (int, float))}


def compare(baseline_path: str, current_path: str, threshold: float,
            metric_suffix: str) -> tuple:
    """Returns (watched_count, failure_messages) for one baseline pair."""
    baseline = load_metrics(baseline_path)
    current = load_metrics(current_path)

    watched = {k: v for k, v in baseline.items()
               if k.endswith(metric_suffix) and v > 0}
    if not watched:
        sys.exit(f"error: baseline {baseline_path} has no metrics ending in "
                 f"'{metric_suffix}' — gate would pass vacuously")

    failures = []
    for name, base_value in sorted(watched.items()):
        if name not in current:
            # A renamed or deleted benchmark must update the baseline,
            # not silently shrink the gate's coverage.
            failures.append(f"{name}: present in baseline but missing from "
                            f"current run")
            continue
        cur_value = current[name]
        change = (cur_value - base_value) / base_value
        status = "OK"
        if change < -threshold:
            status = "REGRESSION"
            failures.append(f"{name}: {base_value:.3g} -> {cur_value:.3g} "
                            f"({change:+.1%}, allowed -{threshold:.0%})")
        print(f"  [{status}] {name}: {base_value:.3g} -> {cur_value:.3g} "
              f"({change:+.1%})")
    return len(watched), failures


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", help="committed baseline BENCH json")
    ap.add_argument("--current", help="freshly produced BENCH json")
    ap.add_argument("--baseline-dir",
                    help="directory of committed BENCH_*.json baselines "
                         "(gates every one of them)")
    ap.add_argument("--current-dir",
                    help="directory holding the fresh BENCH_*.json dumps")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="allowed fractional drop (default 0.20 = 20%%)")
    ap.add_argument("--metric-suffix", default="/routed_msgs_per_sec",
                    help="which counters to compare (metric-name suffix)")
    args = ap.parse_args()

    single = bool(args.baseline or args.current)
    batch = bool(args.baseline_dir or args.current_dir)
    if single == batch:
        sys.exit("error: pass either --baseline/--current or "
                 "--baseline-dir/--current-dir")
    if single and not (args.baseline and args.current):
        sys.exit("error: --baseline and --current go together")
    if batch and not (args.baseline_dir and args.current_dir):
        sys.exit("error: --baseline-dir and --current-dir go together")

    if single:
        pairs = [(args.baseline, args.current)]
    else:
        try:
            names = sorted(n for n in os.listdir(args.baseline_dir)
                           if n.startswith("BENCH_") and n.endswith(".json"))
        except OSError as e:
            sys.exit(f"error: cannot list {args.baseline_dir}: {e}")
        if not names:
            sys.exit(f"error: no BENCH_*.json baselines in "
                     f"{args.baseline_dir} — gate would pass vacuously")
        pairs = []
        for name in names:
            current = os.path.join(args.current_dir, name)
            if not os.path.exists(current):
                # Committed baseline with no fresh run: the bench was
                # dropped from the build or not executed — fail loudly.
                sys.exit(f"error: baseline {name} has no fresh dump in "
                         f"{args.current_dir} (bench not built or not run)")
            pairs.append((os.path.join(args.baseline_dir, name), current))

    total_watched = 0
    failures = []
    for baseline_path, current_path in pairs:
        print(f"{baseline_path} vs {current_path}:")
        watched, errs = compare(baseline_path, current_path, args.threshold,
                                args.metric_suffix)
        total_watched += watched
        failures.extend(errs)

    if failures:
        print(f"\n{len(failures)} bench regression(s) beyond "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nall {total_watched} throughput metrics across "
          f"{len(pairs)} baseline(s) within {args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
