#!/usr/bin/env python3
"""Static memory-layout auditor: record layouts from compiler dumps.

Reads whole-program record layouts out of an IFOT_LAYOUT build
(cmake -DIFOT_LAYOUT=ON) and enforces the committed per-type memory
budget (scripts/memory_budget.json) over the hot per-session and
per-message types. Two layout sources, merged into one type database
(size, per-field offsets, padding holes, vptr/base overhead):

  DWARF      `readelf --debug-dump=info` over every object file of the
             layout build tree (GCC or Clang; -g is all it takes)
  Clang text `-Xclang -fdump-record-layouts-complete` dump captured
             from the compiler's stdout during the build

Three rule classes, in the `file:line: [rule] msg` diagnostic format the
other contract gates use:

  layout-budget    sizeof(T) must stay within the committed budget for
                   every audited type; budgets only move via an explicit
                   `check_layout.sh --update-budget` diff
  layout-padding   padding (internal holes + tail, computed at bit
                   granularity so bitfields count exactly) above the
                   per-type threshold is a violation unless the
                   declaration carries `// layout: pad(N, reason)`;
                   a reason-less or unknown layout annotation is itself
                   a violation
  layout-coverage  every type named in the budget must be found in the
                   dump -- a rename or an over-aggressive strip of the
                   build cannot silently drop a type out of the gate

The per-session types audited here are the unit cost of the ROADMAP's
million-sensor target: one byte on Broker::Session is a megabyte per
million sessions.

Usage:
  ifot_layout.py (--dwarf-dir DIR | --dwarf-file F ... | --clang-dump F ...)
      [--root DIR] [--budget scripts/memory_budget.json | --no-budget]
      [--update-budget] [--top N] [--list]
"""

import argparse
import json
import os
import re
import shutil
import subprocess
import sys

# --------------------------------------------------------------------------
# Type database.
# --------------------------------------------------------------------------


class Member:
    """One occupied extent of a record: field, base subobject, or vptr."""

    def __init__(self, name, bit_offset, bit_size, kind="field"):
        self.name = name
        self.bit_offset = bit_offset
        self.bit_size = bit_size  # None when the field's type is opaque
        self.kind = kind  # field | base | vptr

    def __repr__(self):
        return f"Member({self.name}@{self.bit_offset}:{self.bit_size})"


class Record:
    """A struct/class/union layout merged from one or more TUs."""

    def __init__(self, qualified, size, tu):
        self.qualified = qualified  # e.g. ifot::mqtt::Broker::Session
        self.size = size  # bytes
        self.tu = tu  # first TU the layout came from
        self.members = []  # Member list, unsorted
        self.is_union = False

    def extents(self):
        """Sorted, overlap-merged occupied bit ranges.

        Overlap tolerance absorbs unions, bitfield byte sharing, and
        bases whose tail padding the derived class reuses. A member with
        an unresolvable size is extended to the next member's offset so
        it can never masquerade as a hole.
        """
        raw = []
        ordered = sorted(self.members, key=lambda m: m.bit_offset)
        for i, m in enumerate(ordered):
            size = m.bit_size
            if size is None:
                nxt = (ordered[i + 1].bit_offset
                       if i + 1 < len(ordered) else self.size * 8)
                size = max(nxt - m.bit_offset, 0)
            raw.append((m.bit_offset, m.bit_offset + size))
        raw.sort()
        merged = []
        for start, end in raw:
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        return merged

    def holes(self):
        """(bit_offset, bit_len) gaps between extents, tail included."""
        out = []
        pos = 0
        for start, end in self.extents():
            if start > pos:
                out.append((pos, start - pos))
            pos = max(pos, end)
        if self.size * 8 > pos:
            out.append((pos, self.size * 8 - pos))
        return out

    def padding_bytes(self):
        if not self.members:
            return 0  # opaque record: nothing to judge
        return sum(length for _, length in self.holes()) // 8

    def overhead_bytes(self):
        """vptr + base-subobject bytes (part of sizeof, not field data)."""
        return sum((m.bit_size or 0) // 8 for m in self.members
                   if m.kind in ("vptr", "base"))

    def describe_holes(self):
        parts = []
        for off, length in self.holes():
            if length % 8 == 0 and off % 8 == 0:
                parts.append(f"{length // 8}B@{off // 8}")
            else:
                parts.append(f"{length}b@bit{off}")
        return ", ".join(parts) if parts else "none"


# --------------------------------------------------------------------------
# DWARF source: readelf --debug-dump=info text.
# --------------------------------------------------------------------------

DIE_RE = re.compile(
    r"^\s*<(\d+)><([0-9a-f]+)>:\s+Abbrev Number:\s+(\d+)"
    r"(?:\s+\((DW_TAG_\w+)\))?")
ATTR_RE = re.compile(r"^\s*<[0-9a-f]+>\s+(DW_AT_\w+)\s*:\s*(.*)$")
REF_RE = re.compile(r"<0x([0-9a-f]+)>")
INT_RE = re.compile(r"(-?\d+)")

SCOPE_TAGS = {
    "DW_TAG_namespace", "DW_TAG_structure_type", "DW_TAG_class_type",
    "DW_TAG_union_type",
}
RECORD_TAGS = {
    "DW_TAG_structure_type", "DW_TAG_class_type", "DW_TAG_union_type",
}
# Tags whose byte size is found by following DW_AT_type.
FOLLOW_TAGS = {
    "DW_TAG_typedef", "DW_TAG_const_type", "DW_TAG_volatile_type",
    "DW_TAG_restrict_type", "DW_TAG_atomic_type",
}


def _attr_name(value):
    """Strip readelf's indirect-string prefix from a DW_AT_name value."""
    if "): " in value:
        return value.rsplit("): ", 1)[1].strip()
    return value.strip()


def _attr_int(value):
    """First integer in an attribute value (handles DW_OP_plus_uconst)."""
    m = INT_RE.search(value)
    return int(m.group(1)) if m else None


class Die:
    __slots__ = ("tag", "depth", "parent", "name", "byte_size", "bit_size",
                 "type_ref", "member_loc", "data_bit_offset", "declaration",
                 "artificial", "upper_bound", "count", "decl_line")

    def __init__(self, tag, depth, parent):
        self.tag = tag
        self.depth = depth
        self.parent = parent
        self.name = None
        self.byte_size = None
        self.bit_size = None
        self.type_ref = None
        self.member_loc = None
        self.data_bit_offset = None
        self.declaration = False
        self.artificial = False
        self.upper_bound = None
        self.count = None
        self.decl_line = None


def parse_dwarf_text(text, tu_name):
    """One readelf dump -> {die_offset: Die} plus parent/child indexes."""
    dies = {}
    children = {}
    stack = {}  # depth -> die offset
    cur = None
    for line in text.splitlines():
        m = DIE_RE.match(line)
        if m:
            depth, off, abbrev, tag = (int(m.group(1)), int(m.group(2), 16),
                                       int(m.group(3)), m.group(4))
            if abbrev == 0:  # null DIE: closes the sibling chain
                cur = None
                continue
            parent = stack.get(depth - 1)
            die = Die(tag, depth, parent)
            dies[off] = die
            children.setdefault(parent, []).append(off)
            stack[depth] = off
            cur = die
            continue
        if cur is None:
            continue
        m = ATTR_RE.match(line)
        if not m:
            continue
        attr, value = m.group(1), m.group(2)
        if attr == "DW_AT_name":
            cur.name = _attr_name(value)
        elif attr == "DW_AT_byte_size":
            cur.byte_size = _attr_int(value)
        elif attr == "DW_AT_bit_size":
            cur.bit_size = _attr_int(value)
        elif attr == "DW_AT_type":
            r = REF_RE.search(value)
            cur.type_ref = int(r.group(1), 16) if r else None
        elif attr == "DW_AT_data_member_location":
            cur.member_loc = _attr_int(value)
        elif attr == "DW_AT_data_bit_offset":
            cur.data_bit_offset = _attr_int(value)
        elif attr == "DW_AT_declaration":
            cur.declaration = True
        elif attr == "DW_AT_artificial":
            cur.artificial = True
        elif attr == "DW_AT_upper_bound":
            cur.upper_bound = _attr_int(value)
        elif attr == "DW_AT_count":
            cur.count = _attr_int(value)
        elif attr == "DW_AT_decl_line":
            cur.decl_line = _attr_int(value)
    return dies, children


def dwarf_size_bits(dies, children, ref, memo, depth=0):
    """Bit size of the type DIE at `ref`; None when unresolvable."""
    if ref is None or depth > 64:
        return None
    if ref in memo:
        return memo[ref]
    memo[ref] = None  # cycle guard
    die = dies.get(ref)
    if die is None:
        return None
    size = None
    if die.tag == "DW_TAG_array_type":
        if die.byte_size is not None:
            size = die.byte_size * 8
        else:
            elem = dwarf_size_bits(dies, children, die.type_ref, memo,
                                   depth + 1)
            count = None
            for c in children.get(ref, []):
                sub = dies[c]
                if sub.tag == "DW_TAG_subrange_type":
                    if sub.count is not None:
                        count = sub.count
                    elif sub.upper_bound is not None:
                        count = sub.upper_bound + 1
            if elem is not None and count is not None:
                size = elem * count
    elif die.byte_size is not None:
        size = die.byte_size * 8
    elif die.tag in FOLLOW_TAGS or die.type_ref is not None:
        size = dwarf_size_bits(dies, children, die.type_ref, memo, depth + 1)
    memo[ref] = size
    return size


def dwarf_qualified(dies, ref):
    parts = []
    seen = 0
    while ref is not None and seen < 64:
        die = dies.get(ref)
        if die is None:
            break
        if die.tag in SCOPE_TAGS and die.name:
            parts.append(die.name)
        ref = die.parent
        seen += 1
    return "::".join(reversed(parts))


def records_from_dwarf(text, tu_name, db, conflicts):
    dies, children = parse_dwarf_text(text, tu_name)
    memo = {}
    for off, die in dies.items():
        if die.tag not in RECORD_TAGS or die.declaration:
            continue
        if die.byte_size is None or not die.name:
            continue
        qualified = dwarf_qualified(dies, off)
        rec = Record(qualified, die.byte_size, tu_name)
        rec.is_union = die.tag == "DW_TAG_union_type"
        for c in children.get(off, []):
            sub = dies[c]
            if sub.tag == "DW_TAG_inheritance":
                base_bits = dwarf_size_bits(dies, children, sub.type_ref,
                                            memo)
                loc = sub.member_loc or 0
                rec.members.append(
                    Member("<base>", loc * 8, base_bits, kind="base"))
            elif sub.tag == "DW_TAG_member" and not sub.declaration:
                if sub.member_loc is None and sub.data_bit_offset is None:
                    continue  # static data member
                if sub.data_bit_offset is not None:
                    bit_off = sub.data_bit_offset
                    bits = sub.bit_size
                else:
                    bit_off = sub.member_loc * 8
                    bits = (sub.bit_size if sub.bit_size is not None else
                            dwarf_size_bits(dies, children, sub.type_ref,
                                            memo))
                name = sub.name or "<anon>"
                kind = ("vptr" if sub.artificial
                        and name.startswith("_vptr") else "field")
                rec.members.append(Member(name, bit_off, bits, kind=kind))
        merge_record(db, rec, conflicts)


# --------------------------------------------------------------------------
# Clang source: -Xclang -fdump-record-layouts-complete text.
# --------------------------------------------------------------------------

CLANG_HEADER_RE = re.compile(r"^\s*0 \| (?:struct|class|union) (.+?)\s*$")
CLANG_LINE_RE = re.compile(r"^\s*(\d+)(?::(\d+)-(\d+))? \| (\s*)(.*?)\s*$")
CLANG_SIZE_RE = re.compile(r"\[sizeof=(\d+),.*?align=(\d+)")

# Fundamental-type widths on the LP64 targets this project builds for.
CLANG_SCALAR_BITS = {
    "bool": 8, "_Bool": 8, "char": 8, "signed char": 8, "unsigned char": 8,
    "char8_t": 8, "short": 16, "unsigned short": 16, "char16_t": 16,
    "wchar_t": 32, "char32_t": 32, "int": 32, "unsigned int": 32,
    "long": 64, "unsigned long": 64, "long long": 64,
    "unsigned long long": 64, "float": 32, "double": 64, "long double": 128,
    "std::uint8_t": 8, "std::int8_t": 8, "std::uint16_t": 16,
    "std::int16_t": 16, "std::uint32_t": 32, "std::int32_t": 32,
    "std::uint64_t": 64, "std::int64_t": 64, "std::size_t": 64,
    "std::uintptr_t": 64, "std::ptrdiff_t": 64, "uint8_t": 8, "int8_t": 8,
    "uint16_t": 16, "int16_t": 16, "uint32_t": 32, "int32_t": 32,
    "uint64_t": 64, "int64_t": 64, "size_t": 64,
}


def _clang_type_bits(type_text, sizes):
    """Bit width of a clang member type, or None when opaque."""
    t = type_text.strip()
    for kw in ("struct ", "class ", "union ", "const ", "volatile "):
        t = t.replace(kw, "")
    t = t.strip()
    am = re.match(r"^(.*?)\s*\[(\d+)\]$", t)
    if am:
        elem = _clang_type_bits(am.group(1), sizes)
        return elem * int(am.group(2)) if elem is not None else None
    if t.endswith("*") or t.endswith("&"):
        return 64
    if t in CLANG_SCALAR_BITS:
        return CLANG_SCALAR_BITS[t]
    if t in sizes:
        return sizes[t] * 8
    # Fall back to a suffix match (the dump qualifies, the field may not).
    tail = "::" + t
    hits = {v for k, v in sizes.items() if k.endswith(tail)}
    if len(hits) == 1:
        return hits.pop() * 8
    return None


def records_from_clang(text, tu_name, db, conflicts):
    """Parse every `*** Dumping AST Record Layout` block in `text`."""
    blocks = []
    block = None
    for line in text.splitlines():
        if line.startswith("*** Dumping AST Record Layout"):
            block = []
            blocks.append(block)
            continue
        if block is not None:
            # Any line that is not part of the layout table (build-log
            # noise, blank separators) closes the current block.
            if (line.strip() == ""
                    or (CLANG_LINE_RE.match(line) is None
                        and "sizeof=" not in line)):
                block = None
                continue
            block.append(line)
    # First pass: record sizes, so member widths can resolve by name.
    sizes = {}
    parsed = []
    for block in blocks:
        name = None
        size = None
        lines = []
        for line in block:
            if name is None:
                h = CLANG_HEADER_RE.match(line)
                if h:
                    name = h.group(1).strip()
                    continue
            s = CLANG_SIZE_RE.search(line)
            if s:
                size = int(s.group(1))
            lines.append(line)
        if name and size is not None:
            sizes[name] = size
            parsed.append((name, size, lines))
    for name, size, lines in parsed:
        rec = Record(name, size, tu_name)
        # Only depth-1 lines are this record's own members; deeper lines
        # re-dump the members of nested subobjects.
        depths = []
        for line in lines:
            m = CLANG_LINE_RE.match(line)
            if not m or "sizeof=" in line:
                continue
            off, bit_lo, bit_hi, indent, body = (int(m.group(1)), m.group(2),
                                                 m.group(3), m.group(4),
                                                 m.group(5))
            depth = len(indent) // 2
            if not depths:
                depths.append(depth)  # depth of the record's own fields
            if depth != depths[0]:
                continue
            if body.startswith("("):  # (T vtable pointer) and friends
                rec.members.append(Member(body, off * 8, 64, kind="vptr"))
                continue
            base = re.match(r"^(?:struct|class|union) (.+?)"
                            r"\s*\((?:primary )?(?:virtual )?base\)$", body)
            if base:
                nv = sizes.get(base.group(1).strip())
                rec.members.append(
                    Member("<base>", off * 8,
                           nv * 8 if nv is not None else None, kind="base"))
                continue
            if bit_lo is not None:  # bitfield: byte offset + bit range
                bits = int(bit_hi) - int(bit_lo) + 1
                field = body.rsplit(" ", 1)[-1]
                rec.members.append(Member(field, off * 8 + int(bit_lo), bits))
                continue
            parts = body.rsplit(" ", 1)
            if len(parts) != 2:  # unnamed subobject line
                continue
            type_text, field = parts
            rec.members.append(
                Member(field, off * 8, _clang_type_bits(type_text, sizes)))
        merge_record(db, rec, conflicts)


# --------------------------------------------------------------------------
# Merge + budget rules.
# --------------------------------------------------------------------------


def merge_record(db, rec, conflicts):
    if not rec.qualified:
        return
    prev = db.get(rec.qualified)
    if prev is None:
        db[rec.qualified] = rec
        return
    if prev.size != rec.size:
        conflicts.append(
            (rec.qualified,
             f"{rec.qualified} has size {prev.size} in {prev.tu} but "
             f"{rec.size} in {rec.tu} (ODR/layout divergence)"))
        return
    if len(rec.members) > len(prev.members):
        db[rec.qualified] = rec


def find_budget_type(db, key, spec):
    """Records the budget entry names.

    By default a key matches a record whose qualified name equals it or
    ends in `::key`. Template instantiations carry their arguments in
    the qualified name, so an entry may give an explicit `match` regex
    (searched against the qualified name) instead.
    """
    pattern = spec.get("match")
    if pattern:
        rx = re.compile(pattern)
        return [rec for name, rec in db.items() if rx.search(name)]
    if key in db:
        return [db[key]]
    tail = "::" + key
    return [rec for name, rec in db.items() if name.endswith(tail)]


PAD_NOTE_RE = re.compile(r"//\s*layout:\s*(\w+)(?:\(([^)]*)\))?")


def find_annotation(root, rel_file, type_key):
    """`// layout: pad(N, reason)` near `struct <Name>` in rel_file.

    Returns (decl_line, allowed_pad, note_problem). The annotation may
    sit on the declaration line or up to two lines above it.
    """
    short = type_key.rsplit("::", 1)[-1]
    path = os.path.join(root, rel_file)
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            lines = f.read().splitlines()
    except OSError:
        return None, None, None
    decl_re = re.compile(r"\b(?:struct|class)\s+" + re.escape(short) + r"\b")
    for i, line in enumerate(lines):
        if not decl_re.search(line):
            continue
        decl_line = i + 1
        window = lines[max(0, i - 2):i + 1]
        for w in window:
            m = PAD_NOTE_RE.search(w)
            if not m:
                continue
            kind, args = m.group(1), m.group(2)
            if kind != "pad":
                return decl_line, None, f"unknown layout annotation '{kind}'"
            if args is None:
                return decl_line, None, "layout: pad() without arguments"
            parts = [a.strip() for a in args.split(",", 1)]
            if not parts[0].isdigit():
                return decl_line, None, (
                    "layout: pad() needs a byte count first")
            if len(parts) < 2 or not parts[1]:
                return decl_line, None, (
                    "layout: pad() suppression without a reason")
            return decl_line, int(parts[0]), None
        return decl_line, None, None
    return None, None, None


def audit(db, budget, root, conflicts, update=False):
    """Apply the three rule classes. Returns (violations, summary_rows)."""
    violations = []
    rows = []
    budget_path = budget["__path__"]
    pad_default = budget.get("pad_default", 8)
    for key, spec in sorted(budget.get("types", {}).items()):
        rel_file = spec.get("file", budget_path)
        matches = find_budget_type(db, key, spec)
        decl_line, note_pad, note_problem = find_annotation(
            root, rel_file, key)
        where = f"{rel_file}:{decl_line or 1}"
        if not matches:
            violations.append(
                f"{budget_path}:1: [layout-coverage] budgeted type '{key}' "
                f"not found in any layout dump (renamed? stripped build?)")
            continue
        sized = {rec.size for rec in matches}
        if len(sized) > 1:
            violations.append(
                f"{where}: [layout-coverage] budget key '{key}' is "
                f"ambiguous: matches {', '.join(r.qualified for r in matches)}"
                f" with differing sizes")
            continue
        rec = max(matches, key=lambda r: len(r.members))
        limit = spec.get("budget")
        pad = rec.padding_bytes()
        max_pad = spec.get("max_pad", pad_default)
        if note_problem:
            violations.append(f"{where}: [layout-padding] {note_problem}")
        elif note_pad is not None:
            max_pad = note_pad
        if update:
            spec["budget"] = rec.size
            limit = rec.size
        if limit is not None and rec.size > limit:
            violations.append(
                f"{where}: [layout-budget] {rec.qualified} is {rec.size} "
                f"bytes, budget {limit} (holes: {rec.describe_holes()}; "
                f"raise only via check_layout.sh --update-budget)")
        if pad > max_pad and not note_problem:
            violations.append(
                f"{where}: [layout-padding] {rec.qualified} wastes {pad} "
                f"bytes of padding (> {max_pad} allowed; holes: "
                f"{rec.describe_holes()}); reorder fields or annotate "
                f"'// layout: pad({pad}, reason)'")
        rows.append((key, rec, limit, pad, max_pad))
    for _, msg in conflicts:
        violations.append(f"{budget_path}:1: [layout-coverage] {msg}")
    return violations, rows


# --------------------------------------------------------------------------
# Entry point.
# --------------------------------------------------------------------------


def load_objects(dwarf_dir):
    objs = []
    for dirpath, _, files in os.walk(dwarf_dir):
        for f in files:
            if f.endswith(".o"):
                objs.append(os.path.join(dirpath, f))
    return sorted(objs)


def main():
    ap = argparse.ArgumentParser(
        description="Record-layout auditor over compiler layout dumps")
    ap.add_argument("--dwarf-dir",
                    help="build tree: every .o is readelf'd for DWARF")
    ap.add_argument("--dwarf-file", action="append", default=[],
                    help="pre-dumped readelf --debug-dump=info text")
    ap.add_argument("--clang-dump", action="append", default=[],
                    help="clang -fdump-record-layouts-complete text")
    ap.add_argument("--root", default=".", help="repository root")
    ap.add_argument("--budget", default=None,
                    help="budget JSON (default scripts/memory_budget.json)")
    ap.add_argument("--no-budget", action="store_true",
                    help="parse and list only; no rules")
    ap.add_argument("--update-budget", action="store_true",
                    help="rewrite byte budgets to the measured sizes")
    ap.add_argument("--top", type=int, default=0,
                    help="print the N largest audited types")
    ap.add_argument("--list", action="store_true",
                    help="print the full layout of every audited type")
    args = ap.parse_args()

    if not (args.dwarf_dir or args.dwarf_file or args.clang_dump):
        ap.error("need --dwarf-dir, --dwarf-file or --clang-dump")

    db = {}
    conflicts = []
    if args.dwarf_dir:
        if shutil.which("readelf") is None:
            print("SKIP: readelf not found")
            return 0
        objs = load_objects(args.dwarf_dir)
        if not objs:
            print(f"error: no object files under {args.dwarf_dir}",
                  file=sys.stderr)
            return 2
        for obj in objs:
            out = subprocess.run(["readelf", "--debug-dump=info", obj],
                                 capture_output=True, text=True,
                                 errors="replace", check=False)
            records_from_dwarf(out.stdout, os.path.relpath(obj, args.root),
                               db, conflicts)
    for path in args.dwarf_file:
        with open(path, encoding="utf-8", errors="replace") as f:
            records_from_dwarf(f.read(), path, db, conflicts)
    for path in args.clang_dump:
        with open(path, encoding="utf-8", errors="replace") as f:
            records_from_clang(f.read(), path, db, conflicts)

    if not db:
        print("error: no record layouts found (missing -g / dump flags? "
              "configure with -DIFOT_LAYOUT=ON)", file=sys.stderr)
        return 2

    if args.no_budget:
        for name in sorted(db):
            rec = db[name]
            print(f"{rec.size:6d}  pad={rec.padding_bytes():<4d} {name}")
        return 0

    budget_path = args.budget or os.path.join("scripts", "memory_budget.json")
    full_budget_path = os.path.join(args.root, budget_path)
    try:
        with open(full_budget_path, encoding="utf-8") as f:
            budget = json.load(f)
    except OSError as e:
        print(f"error: cannot read budget {full_budget_path}: {e}",
              file=sys.stderr)
        return 2
    budget["__path__"] = budget_path

    violations, rows = audit(db, budget, args.root, conflicts,
                             update=args.update_budget)

    if args.update_budget:
        budget.pop("__path__", None)
        with open(full_budget_path, "w", encoding="utf-8") as f:
            json.dump(budget, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"updated {budget_path} with measured sizes")

    if args.list or args.top:
        rows.sort(key=lambda r: -r[1].size)
        shown = rows[:args.top] if args.top else rows
        print(f"{'bytes':>6} {'budget':>6} {'pad':>4} {'ovh':>4}  type")
        for key, rec, limit, pad, _ in shown:
            print(f"{rec.size:6d} {limit if limit is not None else '-':>6} "
                  f"{pad:4d} {rec.overhead_bytes():4d}  {key}")
            if args.list:
                for m in sorted(rec.members, key=lambda m: m.bit_offset):
                    size = (f"{m.bit_size // 8}B" if m.bit_size is not None
                            and m.bit_size % 8 == 0 else
                            f"{m.bit_size}b" if m.bit_size is not None
                            else "?")
                    print(f"       {m.bit_offset // 8:5d}  {size:>6}  "
                          f"{m.name}")
                print(f"       holes: {rec.describe_holes()}")

    for v in violations:
        print(v)
    audited = len(rows)
    if violations:
        print(f"ifot_layout: {len(violations)} violation(s) across "
              f"{audited} audited type(s)")
        return 1
    total = sum(rec.size for _, rec, *_ in rows)
    print(f"ifot_layout OK: {audited} audited types, {len(db)} records in "
          f"the dump, {total} budgeted bytes total")
    return 0


if __name__ == "__main__":
    sys.exit(main())
