#!/usr/bin/env python3
"""Project-specific static contract linter for the IFoT middleware.

Fast, AST-free checks of contracts the generic tooling (compiler warnings,
clang-tidy) cannot express because they are *project* conventions:

  unchecked-result   every call of a Result<>/Status-returning function is
                     consumed or explicitly (void)-discarded
  no-nondeterminism  wall-clock time and unseeded randomness never enter
                     src/ outside the sanctioned RNG (common/rng.hpp) --
                     the simulator's determinism guarantee depends on it
  no-raw-io          stdout/stderr writes go through common/log.hpp (the
                     logger injects virtual timestamps; raw prints race it)
  pragma-once        every header starts with #pragma once
  include-order      own header first, then system includes (sorted), then
                     project includes (sorted)
  audit-coverage     every public mutating API of the audited classes
                     (table below) re-checks invariants via
                     IFOT_AUDIT_ASSERT / audit_invariants(), or carries an
                     explicit `// audit: exempt(reason)` pragma

Rules are data-driven: a new banned token, audited class or allowlisted
file is one table entry below.  Diagnostics are `file:line: [rule] msg`;
the process exits non-zero when any violation is found.

Suppressions: append `// lint: allow(<rule>): <reason>` to the offending
line.  A suppression without a reason is itself a violation -- the
"zero unexplained suppressions" contract.

Usage: ifot_lint.py [--root DIR] [--list-rules] [paths...]
"""

import argparse
import os
import re
import sys

# --------------------------------------------------------------------------
# Rule tables.  Adding a rule = one entry here (plus a checker function for
# genuinely new rule *kinds*).  Paths are repo-relative with '/' separators.
# --------------------------------------------------------------------------

# no-nondeterminism: tokens that smuggle wall-clock time or unseeded
# randomness into simulation code, and the files allowed to mention them.
BANNED_NONDETERMINISM = [
    (r"std::chrono::system_clock", "wall-clock time"),
    (r"std::chrono::steady_clock", "wall-clock time"),
    (r"std::chrono::high_resolution_clock", "wall-clock time"),
    (r"\btime\s*\(\s*(?:NULL|nullptr|0|&)", "wall-clock time"),
    (r"\bgettimeofday\s*\(", "wall-clock time"),
    (r"\bclock_gettime\s*\(", "wall-clock time"),
    (r"\bsrand\s*\(", "unseeded/global randomness"),
    (r"\brand\s*\(\s*\)", "unseeded/global randomness"),
    (r"std::random_device", "nondeterministic entropy source"),
    (r"std::mt19937", "use ifot::Rng instead of <random> engines"),
    (r"std::default_random_engine", "use ifot::Rng instead of <random>"),
    (r"#include\s*<random>", "use ifot::Rng (common/rng.hpp)"),
    (r"#include\s*<chrono>", "virtual time is SimTime (common/types.hpp)"),
]
NONDETERMINISM_ALLOWED = {
    "src/common/rng.hpp",  # the one sanctioned randomness source
}

# no-raw-io: direct stdout/stderr writes, and the sanctioned sinks.
# snprintf formats into caller buffers and is fine anywhere.
BANNED_RAW_IO = [
    (r"std::cout\b", "stdout"),
    (r"std::cerr\b", "stderr"),
    (r"std::clog\b", "stderr"),
    (r"(?<![\w:])printf\s*\(", "stdout"),
    (r"\bfprintf\s*\(", "stdout/stderr"),
    (r"\bputs\s*\(", "stdout"),
    (r"\bfwrite\s*\(", "raw stream write"),
]
RAW_IO_ALLOWED = {
    "src/common/log.cpp",    # the logger's stderr sink
    "src/common/log.hpp",
    "src/common/audit.cpp",  # audit failures report before abort()
}

# no-alloc-token: per-call heap-allocation idioms banned at the line
# level in the data-plane files whose hot paths scripts/ifot_callgraph.py
# proves allocation-free -- defense-in-depth that fires before the call
# graph is even built. broker.cpp is deliberately absent: its sanctioned
# allocation frontiers (pool warm-up, cache fill, plan derivation) are
# annotated and proven by the analyzer instead. Text inside
# IFOT_AUDIT_ASSERT argument lists is exempt (release builds compile the
# whole assertion out, so its message building never runs on the hot
# path). `std::function<` is allowed in `using`/`typedef` aliases and as
# a reference declarator (binding a reference constructs nothing); a
# by-value std::function materializes a heap-backed erased callable.
BANNED_ALLOC_TOKENS = [
    (r"\bstd::to_string\s*\(", "allocates a fresh std::string per call"),
    (r"\"\s*\+|\+\s*\"",
     "std::string operator+ builds a heap temporary per call"),
]
NO_ALLOC_FILES = {
    "src/common/pool.hpp",
    "src/mqtt/id_set.hpp",
    "src/mqtt/outbox.cpp",
    "src/mqtt/outbox.hpp",
    "src/mqtt/retained_store.cpp",
    "src/mqtt/retained_store.hpp",
    "src/mqtt/route_cache.cpp",
    "src/mqtt/route_cache.hpp",
    "src/mqtt/topic.hpp",
    # The timing wheel is the spine every timer rides; audit-assert
    # messages (blanked before the scan) are its only string building.
    "src/sim/simulator.cpp",
}

# audit-coverage: classes whose public mutating (non-const) APIs must
# re-check invariants after every mutation.  The linter reads the public
# section of `header` for the contract and checks definitions in `impl`.
AUDITED_CLASSES = [
    {"class": "Broker", "header": "src/mqtt/broker.hpp",
     "impl": "src/mqtt/broker.cpp"},
    {"class": "Outbox", "header": "src/mqtt/outbox.hpp",
     "impl": "src/mqtt/outbox.cpp"},
    {"class": "RouteCache", "header": "src/mqtt/route_cache.hpp",
     "impl": "src/mqtt/route_cache.cpp"},
    {"class": "RetainedStore", "header": "src/mqtt/retained_store.hpp",
     "impl": "src/mqtt/retained_store.cpp"},
    {"class": "Bridge", "header": "src/mqtt/bridge.hpp",
     "impl": "src/mqtt/bridge.cpp"},
    {"class": "FederationMap", "header": "src/mqtt/federation_map.hpp",
     "impl": "src/mqtt/federation_map.cpp"},
    {"class": "NeuronModule", "header": "src/node/module.hpp",
     "impl": "src/node/module.cpp"},
    {"class": "Middleware", "header": "src/core/middleware.hpp",
     "impl": "src/core/middleware.cpp"},
]
AUDIT_MARKERS = ("IFOT_AUDIT_ASSERT", "audit_invariants")

# unchecked-result: functions whose declared name is ambiguous across the
# tree (same name declared with both Result and non-Result returns) are
# skipped -- the compiler's [[nodiscard]] still covers direct calls.
RESULT_RETURN_RE = re.compile(
    r"(?:\[\[nodiscard\]\]\s+)?(?:virtual\s+)?(?:static\s+)?"
    r"(Result\s*<[^;{}()]*>|Status)\s+"
    r"(?:[A-Za-z_]\w*::)?([A-Za-z_]\w*)\s*\(")
NON_RESULT_RETURN_RE = re.compile(
    r"^\s*(?:\[\[nodiscard\]\]\s+)?(?:virtual\s+)?(?:static\s+)?(?:inline\s+)?"
    r"(void|bool|int|double|float|std::\w+|[A-Z]\w*(?:::\w+)*[&*]?|auto)\s+"
    r"(?:[A-Za-z_]\w*::)?([a-z_]\w*)\s*\(", re.MULTILINE)

SUPPRESS_RE = re.compile(r"//\s*lint:\s*allow\(([\w-]+)\)(:?\s*(.*))?")
# A reason is mandatory (the '(' must not be immediately closed); it may
# wrap onto following comment lines, so no closing ')' is required here.
EXEMPT_RE = re.compile(r"//\s*audit:\s*exempt\((?!\s*\))")
# scripts/ifot_layout.py's padding escape hatch. The only kind is
# `pad(N, reason)`; anything else is a typo that would suppress nothing.
LAYOUT_NOTE_RE = re.compile(r"//\s*layout:\s*(\w+)(?:\(([^)]*)\))?")

SOURCE_EXTS = (".cpp", ".hpp")


def is_header(path):
    return path.endswith(".hpp")


# --------------------------------------------------------------------------
# Lexing helpers.
# --------------------------------------------------------------------------

def strip_comments_and_strings(text):
    """Blanks out comments and string/char literal *contents*, preserving
    newlines (line numbers survive) and the `//` marker of line comments
    (so pragma scanners can still find them on the raw text)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            seg = text[i:j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in seg))
            i = j + 2
        elif c == "R" and text[i:i + 2] == 'R"':
            m = re.match(r'R"([^(\s]*)\(', text[i:])
            if not m:
                out.append(c)
                i += 1
                continue
            close = ")" + m.group(1) + '"'
            j = text.find(close, i)
            j = n - len(close) if j == -1 else j
            seg = text[i:j + len(close)]
            out.append("".join(ch if ch == "\n" else " " for ch in seg))
            i = j + len(close)
        elif c in "\"'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            out.append(c + " " * (j - i - 1) + c)
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


class Diagnostics:
    def __init__(self):
        self.items = []

    def report(self, path, line, rule, message, raw_lines):
        """Registers a violation unless the offending line carries a
        well-formed suppression for this rule."""
        raw = raw_lines[line - 1] if 0 < line <= len(raw_lines) else ""
        m = SUPPRESS_RE.search(raw)
        if m and m.group(1) == rule:
            if m.group(3):
                return  # suppressed, with a reason
            self.items.append((path, line, rule,
                               "suppression without a reason "
                               "(`// lint: allow(%s): <why>`)" % rule))
            return
        self.items.append((path, line, rule, message))


# --------------------------------------------------------------------------
# Rule: banned tokens (no-nondeterminism, no-raw-io).
# --------------------------------------------------------------------------

def check_banned_tokens(path, text, raw_lines, diags):
    checks = []
    if path not in NONDETERMINISM_ALLOWED:
        checks.append(("no-nondeterminism", BANNED_NONDETERMINISM,
                       "outside common/rng.hpp"))
    if path not in RAW_IO_ALLOWED:
        checks.append(("no-raw-io", BANNED_RAW_IO,
                       "outside common/log.hpp (use IFOT_LOG)"))
    for rule, table, where in checks:
        for pattern, what in table:
            for m in re.finditer(pattern, text):
                diags.report(path, line_of(text, m.start()), rule,
                             "%s (%s) is banned %s" %
                             (m.group(0).strip(), what, where), raw_lines)


# --------------------------------------------------------------------------
# Rule: no-alloc-token.
# --------------------------------------------------------------------------

def blank_audit_asserts(text):
    """Blanks the argument span of every IFOT_AUDIT_ASSERT(...) call
    (newlines preserved): audit assertions compile out of release
    builds, so allocation idioms in their messages never run hot."""
    out = []
    pos = 0
    for m in re.finditer(r"\bIFOT_AUDIT_ASSERT\s*\(", text):
        open_paren = text.find("(", m.start())
        close = close_of_call(text, open_paren)
        if close == -1 or open_paren < pos:
            continue
        out.append(text[pos:open_paren + 1])
        out.append("".join(ch if ch == "\n" else " "
                           for ch in text[open_paren + 1:close]))
        pos = close
    out.append(text[pos:])
    return "".join(out)


def matching_angle(text, open_angle):
    depth = 0
    for j in range(open_angle, len(text)):
        if text[j] == "<":
            depth += 1
        elif text[j] == ">":
            depth -= 1
            if depth == 0:
                return j
    return -1


def check_alloc_tokens(path, text, raw_lines, diags):
    if path not in NO_ALLOC_FILES:
        return
    scan = blank_audit_asserts(text)
    for pattern, what in BANNED_ALLOC_TOKENS:
        for m in re.finditer(pattern, scan):
            diags.report(path, line_of(scan, m.start()), "no-alloc-token",
                         "%s (%s) is banned in the no-alloc data-plane "
                         "files" % (m.group(0).strip(), what), raw_lines)
    for m in re.finditer(r"\bstd::function\s*<", scan):
        line = line_of(scan, m.start())
        decl_line = raw_lines[line - 1] if line <= len(raw_lines) else ""
        if re.search(r"\b(using|typedef)\b", decl_line):
            continue  # type alias, not a construction
        close = matching_angle(scan, scan.find("<", m.start()))
        after = scan[close + 1:close + 16].lstrip() if close != -1 else ""
        if after.startswith(("&", "*")):
            continue  # reference/pointer declarator binds, never constructs
        diags.report(path, line, "no-alloc-token",
                     "by-value std::function (heap-backed type erasure) is "
                     "banned in the no-alloc data-plane files; take a "
                     "reference, a function pointer or a template parameter",
                     raw_lines)


# --------------------------------------------------------------------------
# Rule: pragma-once + include-order.
# --------------------------------------------------------------------------

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+([<"])([^">]+)[">]', re.MULTILINE)


def check_includes(path, text, raw_lines, diags):
    # Parse includes from the raw text: stripping blanks the quoted
    # targets. `text` (stripped) is still used for the pragma scan.
    raw_text = "\n".join(raw_lines)
    includes = []  # (line, kind, target)
    for m in INCLUDE_RE.finditer(raw_text):
        kind = "system" if m.group(1) == "<" else "project"
        includes.append((line_of(raw_text, m.start()), kind, m.group(2)))

    if is_header(path):
        pragma = re.search(r"^\s*#\s*pragma\s+once\s*$", text, re.MULTILINE)
        if not pragma:
            diags.report(path, 1, "pragma-once",
                         "header is missing #pragma once", raw_lines)
        elif includes and line_of(text, pragma.start()) > includes[0][0]:
            diags.report(path, includes[0][0], "pragma-once",
                         "#pragma once must precede all includes", raw_lines)
    else:
        # Own header first: src/foo/bar.cpp -> "foo/bar.hpp".
        rel = path[len("src/"):] if path.startswith("src/") else path
        own = os.path.splitext(rel)[0] + ".hpp"
        if includes and includes[0][2] == own:
            includes = includes[1:]
        elif any(inc[2] == own for inc in includes):
            diags.report(path, includes[0][0], "include-order",
                         'own header "%s" must be the first include' % own,
                         raw_lines)

    # System block before project block, each alphabetically sorted.
    seen_project = None
    for line, kind, target in includes:
        if kind == "project":
            seen_project = (line, target)
        elif seen_project:
            diags.report(path, line, "include-order",
                         "system include <%s> after project include \"%s\""
                         % (target, seen_project[1]), raw_lines)
            break
    for kind_want in ("system", "project"):
        block = [(line, t) for line, kind, t in includes if kind == kind_want]
        for (l1, t1), (l2, t2) in zip(block, block[1:]):
            if t2 < t1:
                diags.report(path, l2, "include-order",
                             "%s includes are not sorted: %s after %s"
                             % (kind_want, t2, t1), raw_lines)
                break


# --------------------------------------------------------------------------
# Rule: unchecked-result.
# --------------------------------------------------------------------------

def collect_result_functions(files):
    """Names declared with Result<>/Status returns, minus names also
    declared with a non-Result return somewhere (ambiguous)."""
    result_names, other_names = set(), set()
    for path, text in files.items():
        for m in RESULT_RETURN_RE.finditer(text):
            result_names.add(m.group(2))
        for m in NON_RESULT_RETURN_RE.finditer(text):
            # The generic capitalized-type alternative also matches
            # Result</Status declarations themselves; those are not
            # conflicting overloads.
            rtype = m.group(1)
            if rtype == "Status" or rtype.startswith("Result"):
                continue
            other_names.add(m.group(2))
    return result_names - other_names


RECEIVER_CHARS = set("abcdefghijklmnopqrstuvwxyz"
                     "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.:>-()[]")


def statement_prefix(text, call_start):
    """Walks back from a call over its receiver chain (`obj.`, `ptr->`,
    `ns::`, interleaved `()`/`[]`) and returns (prefix, chain) where
    `prefix` is the right-trimmed text immediately before the statement
    and `chain` is the walked-over receiver text (includes any leading
    `(void)` cast, which the walk also consumes)."""
    i = call_start
    while i > 0 and text[i - 1] in RECEIVER_CHARS or \
            (i > 0 and text[i - 1] in " \t" and i - 2 >= 0 and
             text[i - 2] in ".>:"):
        i -= 1
    return text[:i].rstrip(), text[i:call_start]


def close_of_call(text, open_paren):
    depth = 0
    for j in range(open_paren, len(text)):
        if text[j] == "(":
            depth += 1
        elif text[j] == ")":
            depth -= 1
            if depth == 0:
                return j
    return -1


def check_unchecked_result(path, text, raw_lines, result_names, diags):
    for m in re.finditer(r"\b([A-Za-z_]\w*)\s*\(", text):
        name = m.group(1)
        if name not in result_names:
            continue
        prefix, chain = statement_prefix(text, m.start())
        # A statement begins after ';', '{', '}' or at file start; anything
        # else (return, =, if (, operators, commas) consumes the result or
        # is mid-expression.
        if prefix and prefix[-1] not in ";{}":
            continue
        # `(void)obj.call(...)` — the cast is part of the walked-back
        # receiver chain, and explicitly discards the result.
        if chain.lstrip().startswith("(void)"):
            continue
        open_paren = text.find("(", m.end(1))
        close = close_of_call(text, open_paren)
        if close == -1:
            continue
        after = text[close + 1:close + 2]
        rest = text[close + 1:].lstrip()
        if not rest.startswith(";"):
            continue  # .value(), chained call, etc. -- consumed
        # Reaching here: `name(...)` is a whole statement whose Result is
        # dropped on the floor, and it is not a (void) discard (the cast
        # would appear in the prefix).
        del after
        diags.report(path, line_of(text, m.start()), "unchecked-result",
                     "result of '%s(...)' (returns Result<>/Status) is "
                     "silently dropped; consume it or cast to (void)" % name,
                     raw_lines)


# --------------------------------------------------------------------------
# Rule: unknown-suppression.
# --------------------------------------------------------------------------

def check_suppressions(path, raw_lines, diags, valid_rules):
    """A `// lint: allow(<rule>)` naming a rule this linter does not have
    suppresses nothing and hides a typo forever -- itself a violation.
    Same contract for the layout auditor's `// layout: pad(N, reason)`
    vocabulary: an unknown kind or a reason-less pad() is a violation."""
    for lineno, raw in enumerate(raw_lines, 1):
        m = SUPPRESS_RE.search(raw)
        if m and m.group(1) not in valid_rules:
            diags.items.append(
                (path, lineno, "unknown-suppression",
                 "suppression names unknown rule '%s' (have: %s)"
                 % (m.group(1), ", ".join(sorted(valid_rules)))))
        m = LAYOUT_NOTE_RE.search(raw)
        if not m:
            continue
        kind, args = m.group(1), m.group(2)
        if kind != "pad":
            diags.items.append(
                (path, lineno, "unknown-suppression",
                 "unknown layout annotation '%s' (only "
                 "`// layout: pad(N, reason)` exists)" % kind))
            continue
        parts = [a.strip() for a in (args or "").split(",", 1)]
        if not parts[0].isdigit() or len(parts) < 2 or not parts[1]:
            diags.items.append(
                (path, lineno, "unknown-suppression",
                 "layout: pad() suppression without a byte count and "
                 "a reason (`// layout: pad(N, why)`)"))


# --------------------------------------------------------------------------
# Rule: audit-coverage.
# --------------------------------------------------------------------------

def public_mutating_methods(class_name, header_text):
    """Names of public non-const methods declared in `class X { ... };`,
    excluding constructors/destructors/operators."""
    m = re.search(r"\bclass\s+%s\b[^;{]*{" % re.escape(class_name),
                  header_text)
    if not m:
        return {}
    depth, i = 1, m.end()
    body_start = m.end()
    while i < len(header_text) and depth:
        if header_text[i] == "{":
            depth += 1
        elif header_text[i] == "}":
            depth -= 1
        i += 1
    body = header_text[body_start:i - 1]

    methods = {}
    access = "private"  # class default
    # Walk declarations at class-body depth 0 (skip nested struct bodies).
    depth = 0
    for raw_line in body.split("\n"):
        line = raw_line.strip()
        if depth == 0:
            if re.match(r"(public|protected|private)\s*:", line):
                access = line.split(":")[0].strip()
            elif access == "public":
                decl = re.match(
                    r"(?:\[\[nodiscard\]\]\s*)?(?:virtual\s+)?"
                    r"(?:[\w:<>,&*\s]+?\s)??([a-z_]\w*)\s*\(", line)
                if decl and not line.startswith(("~", "operator")):
                    name = decl.group(1)
                    is_const = re.search(r"\)\s*const\b", raw_line) is not None
                    if name != class_name and name not in ("operator",):
                        # const overloads don't mutate; keep mutating ones.
                        if not is_const:
                            methods[name] = True
        depth += raw_line.count("{") - raw_line.count("}")
    return methods


def method_bodies(class_name, impl_text):
    """Yields (name, def_line, body_text) for `Ret Class::name(...) {...}`
    definitions in an implementation file."""
    for m in re.finditer(r"\b%s::([A-Za-z_]\w*)\s*\(" % re.escape(class_name),
                         impl_text):
        open_paren = impl_text.find("(", m.end(1))
        close = close_of_call(impl_text, open_paren)
        if close == -1:
            continue
        j = close + 1
        while j < len(impl_text) and impl_text[j] not in "{;":
            j += 1
        if j >= len(impl_text) or impl_text[j] != "{":
            continue  # declaration, not definition
        depth, k = 1, j + 1
        while k < len(impl_text) and depth:
            if impl_text[k] == "{":
                depth += 1
            elif impl_text[k] == "}":
                depth -= 1
            k += 1
        yield m.group(1), line_of(impl_text, m.start()), impl_text[j:k]


def check_audit_coverage(files, raw_files, diags, classes=None):
    for entry in (AUDITED_CLASSES if classes is None else classes):
        header, impl = entry["header"], entry["impl"]
        if header not in files or impl not in files:
            continue
        wanted = public_mutating_methods(entry["class"], files[header])
        raw_impl = raw_files[impl]
        raw_lines = raw_impl.split("\n")
        for name, line, body in method_bodies(entry["class"], files[impl]):
            if name not in wanted:
                continue
            if any(marker in body for marker in AUDIT_MARKERS):
                continue
            # The exempt pragma may sit on the definition line, in the
            # comment block just above it (up to 4 lines), or anywhere in
            # the (raw, comment-bearing) body.
            raw_region = "\n".join(
                raw_lines[max(0, line - 5):line + body.count("\n") + 1])
            if EXEMPT_RE.search(raw_region):
                continue
            diags.report(
                impl, line, "audit-coverage",
                "public mutating API %s::%s has no IFOT_AUDIT_ASSERT / "
                "audit_invariants() and no `// audit: exempt(reason)`"
                % (entry["class"], name), raw_lines)


# --------------------------------------------------------------------------
# Driver.
# --------------------------------------------------------------------------

def gather_sources(root, paths):
    files = {}
    if paths:
        for p in paths:
            rel = os.path.relpath(p, root).replace(os.sep, "/")
            with open(os.path.join(root, rel), encoding="utf-8") as f:
                files[rel] = f.read()
        return files
    for base, _, names in os.walk(os.path.join(root, "src")):
        for name in sorted(names):
            if not name.endswith(SOURCE_EXTS):
                continue
            full = os.path.join(base, name)
            rel = os.path.relpath(full, root).replace(os.sep, "/")
            with open(full, encoding="utf-8") as f:
                files[rel] = f.read()
    return files


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=os.path.join(
        os.path.dirname(os.path.abspath(__file__)), ".."),
        help="repository root (default: the linter's parent directory)")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule ids and exit")
    ap.add_argument("--audited-class", action="append", default=[],
                    metavar="CLASS:HEADER:IMPL",
                    help="override the audit-coverage table (used by the "
                         "negative fixture test)")
    ap.add_argument("--no-alloc-file", action="append", default=[],
                    metavar="PATH",
                    help="extend the no-alloc-token file table (used by "
                         "the negative fixture test)")
    ap.add_argument("paths", nargs="*",
                    help="specific files to lint (default: all of src/)")
    args = ap.parse_args(argv)

    rules = ["unchecked-result", "no-nondeterminism", "no-raw-io",
             "no-alloc-token", "pragma-once", "include-order",
             "audit-coverage", "unknown-suppression"]
    if args.list_rules:
        print("\n".join(rules))
        return 0

    root = os.path.abspath(args.root)
    raw_files = gather_sources(root, args.paths)
    if not raw_files:
        print("ifot_lint: no sources found under %s" % root, file=sys.stderr)
        return 2
    files = {p: strip_comments_and_strings(t) for p, t in raw_files.items()}

    for extra in args.no_alloc_file:
        NO_ALLOC_FILES.add(extra)

    diags = Diagnostics()
    result_names = collect_result_functions(files)
    for path, text in sorted(files.items()):
        raw_lines = raw_files[path].split("\n")
        check_banned_tokens(path, text, raw_lines, diags)
        check_alloc_tokens(path, text, raw_lines, diags)
        check_includes(path, text, raw_lines, diags)
        check_unchecked_result(path, text, raw_lines, result_names, diags)
        check_suppressions(path, raw_lines, diags, set(rules))
    overrides = [dict(zip(("class", "header", "impl"), spec.split(":")))
                 for spec in args.audited_class] or None
    check_audit_coverage(files, raw_files, diags, overrides)

    for path, line, rule, message in sorted(diags.items):
        print("%s:%d: [%s] %s" % (path, line, rule, message))
    if diags.items:
        print("ifot_lint: %d violation(s) across %d file(s)"
              % (len(diags.items), len({d[0] for d in diags.items})),
              file=sys.stderr)
        return 1
    print("ifot_lint: %d files clean (%d rules: %s)"
          % (len(files), len(rules), ", ".join(rules)))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
