#!/usr/bin/env bash
# Whole-program hot-path contract gate (scripts/ifot_callgraph.py).
#
# Configures an incremental build tree with -DIFOT_CALLGRAPH=ON (GCC's
# -fcallgraph-info=su,da drops one .ci VCG dump per TU next to each
# object), builds the data-plane libraries, links the per-TU dumps into
# one program call graph and proves the three contracts on every root in
# the analyzer's root table:
#
#   no-alloc       every allocation reachable from a root is a sanctioned
#                  `// static: alloc(reason)` frontier
#   no-throw       no root reaches a std::__throw_* origination point
#   bounded-stack  every root's worst-case stack fits the committed
#                  budget in scripts/stack_budget.json
#
# SKIPs (exit 0) when python3, cmake or GCC >= 10 is unavailable so the
# gate degrades gracefully on minimal containers. Exits non-zero with
# file:line diagnostics and the offending root-to-violation call chain on
# any contract break.
#
# Usage: scripts/check_callgraph.sh [--update-budget] [--top N]
#   --update-budget  re-measure and rewrite scripts/stack_budget.json
#                    (commit the result) instead of checking against it
#   --top N          also print the N deepest per-root stack chains
set -u

cd "$(dirname "$0")/.."

BUILD_DIR="${IFOT_CALLGRAPH_BUILD_DIR:-build-callgraph}"

if ! command -v python3 >/dev/null 2>&1; then
  echo "SKIP: python3 not found; cannot run ifot_callgraph"
  exit 0
fi
if ! command -v cmake >/dev/null 2>&1; then
  echo "SKIP: cmake not found; cannot build call-graph dumps"
  exit 0
fi

# The .ci dump format is GCC-only (>= 10). Honor $CXX, else find one.
GCC="${CXX:-}"
if [ -n "$GCC" ]; then
  if ! "$GCC" --version 2>/dev/null | head -1 | grep -qiE 'g\+\+|gcc'; then
    echo "SKIP: \$CXX ($GCC) is not GCC; -fcallgraph-info needs GCC >= 10"
    exit 0
  fi
else
  for candidate in g++ c++; do
    if command -v "$candidate" >/dev/null 2>&1 &&
       "$candidate" --version 2>/dev/null | head -1 | grep -qiE 'g\+\+|gcc'; then
      GCC="$candidate"
      break
    fi
  done
fi
if [ -z "$GCC" ]; then
  echo "SKIP: no GCC found; -fcallgraph-info needs GCC >= 10"
  exit 0
fi
major="$("$GCC" -dumpversion 2>/dev/null | cut -d. -f1)"
case "$major" in
  ''|*[!0-9]*) major=0 ;;
esac
if [ "$major" -lt 10 ]; then
  echo "SKIP: $GCC is GCC $major; -fcallgraph-info=su,da needs GCC >= 10"
  exit 0
fi

update_budget=0
top_args=()
while [ "$#" -gt 0 ]; do
  case "$1" in
    --update-budget) update_budget=1 ;;
    --top) top_args=(--top "${2:?--top needs a count}"); shift ;;
    *) echo "usage: $0 [--update-budget] [--top N]"; exit 2 ;;
  esac
  shift
done

echo "== configure + build call-graph dumps ($GCC, $BUILD_DIR/) =="
if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  cmake -S . -B "$BUILD_DIR" -DCMAKE_CXX_COMPILER="$GCC" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo -DIFOT_CALLGRAPH=ON \
        >/dev/null || exit 1
fi
jobs="$(nproc 2>/dev/null || echo 2)"
# Only the data-plane libraries feed the proof; tests/benches don't.
cmake --build "$BUILD_DIR" -j "$jobs" --target ifot_mqtt ifot_net \
      >/dev/null || exit 1

echo "== ifot_callgraph: hot-path contract proofs =="
args=(--ci-dir "$BUILD_DIR" --src src --budget scripts/stack_budget.json)
if [ "$update_budget" -eq 1 ]; then
  args+=(--update-budget)
fi
if [ "${#top_args[@]}" -gt 0 ]; then
  args+=("${top_args[@]}")
fi
if ! python3 scripts/ifot_callgraph.py "${args[@]}"; then
  exit 1
fi

echo "check_callgraph: OK"
exit 0
