#!/usr/bin/env python3
"""Static hot-path analyzer: call-graph proofs over GCC -fcallgraph-info.

Links the per-TU `.ci` dumps an IFOT_CALLGRAPH build drops next to its
objects (cmake -DIFOT_CALLGRAPH=ON; GCC >= 10) into one whole-program
call graph, then proves three contracts for every function reachable
from the declared data-plane roots (table below) -- on every build, for
every path, which the runtime `match_alloc_test` gate (one scripted
scenario) cannot:

  no-alloc       no path from a root reaches an allocation entry point
                 (operator new, malloc, calloc, realloc, ...)
  no-throw       no path from a root originates an exception
                 (__cxa_throw / __cxa_allocate_exception / std::__throw_*;
                 _Unwind_Resume only *propagates* and is not counted)
  bounded-stack  the worst-case stack depth per root, summed from the
                 per-function `su` stack-usage records, stays within the
                 committed budget (scripts/stack_budget.json); a
                 recursion cycle is unbounded unless annotated

Indirect and virtual calls appear in the dumps as edges to the
`__indirect_call` placeholder. They are handled conservatively through a
small annotation vocabulary. An annotation on the call-site line (or the
line above) governs that one call; an annotation on a function's
definition line governs the calls the function makes through *inlined
library code* -- GCC attributes those edges to /usr/include lines where
no comment can live, so the tightest annotatable scope is the enclosing
function (its in-repo call sites are still traversed and checked
individually):

  // static: calls(<fn>[, <fn>...])   the call targets exactly these
                                      functions; analysis continues
                                      through each of them
  // static: leaf(<reason>)           the callee is outside the proof
                                      boundary (e.g. the simulator's
                                      timer service); analysis stops
                                      here, charging one external frame
  // static: alloc(<reason>)          sanctioned allocation frontier
                                      (pool warm-up, scratch growth);
                                      stops all three traversals and is
                                      reported in the sanction summary
  // static: recurse(<N>, <reason>)   on a function definition: the
                                      recursion cycle through it is
                                      bounded by N frames

An indirect edge with no annotation is a violation -- the same "zero
unexplained suppressions" contract as ifot_lint.py. A reason-less or
unknown annotation is itself a violation. `alloc` cuts the no-throw
walk too: a sanctioned allocation's bad_alloc aborts by design on the
target class of device, it does not unwind the data plane.

Diagnostics are `file:line: [rule] msg` with an indented call chain;
exit is non-zero when any violation is found.

Usage:
  ifot_callgraph.py --ci-dir build-callgraph [--root DIR]
      [--budget scripts/stack_budget.json | --no-budget]
      [--update-budget] [--top N] [--fixit-noexcept] [--list-roots]
      [--root-spec KEY=REGEX ...] [--src DIR ...]
"""

import argparse
import json
import os
import re
import sys

# --------------------------------------------------------------------------
# Contract tables.
# --------------------------------------------------------------------------

# Data-plane roots: every publish->route->egress (and retry/retransmit)
# byte rides through these. Keys name budget entries; patterns match the
# demangled signatures the .ci node labels carry.
DEFAULT_ROOTS = [
    ("Broker::route", r"ifot::mqtt::Broker::route\("),
    ("Broker::derive_plan", r"ifot::mqtt::Broker::derive_plan\("),
    ("Broker::deliver", r"ifot::mqtt::Broker::deliver\("),
    ("Broker::pump_queue", r"ifot::mqtt::Broker::pump_queue\("),
    ("Broker::send_inflight", r"ifot::mqtt::Broker::send_inflight\("),
    ("Broker::arm_retry", r"ifot::mqtt::Broker::arm_retry\("),
    ("Broker::on_retry_timer", r"ifot::mqtt::Broker::on_retry_timer\("),
    # TopicTree::match() itself inlines away at -O2; its recursive worker
    # is the surviving node and carries the whole walk.
    ("TopicTree::match", r"ifot::mqtt::TopicTree<.*>::match(_rec)?\("),
    ("RouteCache::lookup", r"ifot::mqtt::RouteCache::lookup\("),
    ("RetainedStore::collect", r"ifot::mqtt::RetainedStore::collect\("),
    ("Outbox::enqueue", r"ifot::mqtt::Outbox::enqueue\("),
    ("Outbox::flush", r"ifot::mqtt::Outbox::flush\("),
    ("Outbox::take_buffer", r"ifot::mqtt::Outbox::take_buffer\("),
    ("WireTemplate::patched", r"ifot::mqtt::WireTemplate::patched\("),
    ("Network::send_frames", r"ifot::net::Network::send_frames\("),
]

# Allocation entry points (external symbols; matched on the mangled
# title). Deallocation is deliberately not banned: steady-state buffers
# retain capacity, and their teardown delete paths are release-only.
ALLOC_TITLE_RE = re.compile(
    r"^(_Znwm|_Znam|_ZnwmSt11align_val_t|_ZnamSt11align_val_t"
    r"|_Znwj|_Znaj|malloc|calloc|realloc|aligned_alloc|posix_memalign"
    r"|strdup|strndup)")

# Exception-origination points. std::__throw_* helpers mangle to
# _ZSt<len>__throw_...; __cxa_allocate_exception precedes every throw.
THROW_TITLE_RE = re.compile(
    r"^(__cxa_throw|__cxa_rethrow|__cxa_allocate_exception"
    r"|_ZSt\d+__throw_\w+)")

# Stack charged for calls the graph cannot see through: external library
# functions (memcpy, _Hash_bytes, ...), leaf/alloc-cut callees, and
# unresolved indirect targets (those are violations anyway).
DEFAULT_EXTERNAL_FRAME_BYTES = 256

# libstdc++-internal recursions that survive into the graph. They are
# depth-bounded by construction but live in /usr/include, where no
# recurse() annotation can be placed, so their bounds are tabled here:
# __introsort_loop recurses at most 2*log2(n) times by its depth_limit
# parameter; _Rb_tree::_M_erase (tree teardown) recurses to the tree
# height, <= 2*log2(n) for a red-black tree. 48 frames covers n = 2^24.
KNOWN_STD_CYCLES = [
    (re.compile(r"std::__introsort_loop"), 48),
    (re.compile(r"_Rb_tree.*::_M_erase"), 48),
]

# libstdc++ internals that survive inlining as graph nodes of their own,
# carrying an indirect call no repo-side comment can govern (both the node
# and the call site live in a system header). Each listed pattern is a
# CLOSED dispatch: std::variant's destroy/visit machinery indexes a
# compiler-generated table over the variant's own alternatives, so the
# "indirect" call can only land on one of the statically known alternative
# destructors — which are all release-only on this codebase's Packet
# alternatives (refcount drops and recycled-buffer frees). Their indirect
# edges are accepted; everything the alternatives' destructors call is
# still analyzed wherever it appears as a node of its own.
#
# _Sp_counted_base::_M_release (and its _M_destroy / last-use helpers)
# virtually dispatches to _M_dispose/_M_destroy of the control block. The
# data plane's shared_ptrs are SharedString/SharedPayload buffers created
# by make_shared: their control blocks destroy a std::string / Bytes and
# free the block — release-only, no allocation, nothrow by contract.
#
# Patterns are tried against both the pretty signature and the mangled
# title: GCC truncates deeply templated signatures (losing the class
# prefix), while the mangled name always carries it.
KNOWN_STD_INDIRECT = [
    re.compile(r"__detail::__variant|_Variant_storage"),
    re.compile(r"_Sp_counted_base"),
]

ANNOTATION_KINDS = ("calls", "leaf", "alloc", "recurse")
ANNOTATION_RE = re.compile(r"//\s*static:\s*([\w-]+)\(([^)]*)\)")
# An annotation whose argument list runs past the end of the line; the
# reason continues on the following `//` comment lines up to the ')'.
ANNOTATION_OPEN_RE = re.compile(r"//\s*static:\s*([\w-]+)\(([^)\n]*)$")
ANNOTATION_CONT_RE = re.compile(r"^\s*//\s?(.*)$")
SOURCE_EXTS = (".cpp", ".hpp")

RULES = ("no-alloc", "no-throw", "bounded-stack", "indirect-call",
         "annotation")


# --------------------------------------------------------------------------
# .ci (VCG) parsing.
# --------------------------------------------------------------------------

NODE_RE = re.compile(
    r'^node:\s*\{\s*title:\s*"((?:\\.|[^"\\])*)"'
    r'\s*label:\s*"((?:\\.|[^"\\])*)"(.*)\}')
EDGE_RE = re.compile(
    r'^edge:\s*\{\s*sourcename:\s*"((?:\\.|[^"\\])*)"'
    r'\s*targetname:\s*"((?:\\.|[^"\\])*)"'
    r'(?:\s*label:\s*"((?:\\.|[^"\\])*)")?\s*\}')
SU_RE = re.compile(r"^(\d+) bytes \((static|dynamic|bounded|dynamic,bounded)\)$")

INDIRECT_NODE = "__indirect_call"


def unescape(s):
    return s.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")


def parse_location(part):
    """'path:line:col' -> (path, line) or (None, 0) when absent."""
    bits = part.rsplit(":", 2)
    if len(bits) == 3 and bits[1].isdigit() and bits[2].isdigit():
        return bits[0], int(bits[1])
    return None, 0


class Node:
    __slots__ = ("title", "sig", "file", "line", "su_bytes", "su_qual",
                 "defined", "locs")

    def __init__(self, title):
        self.title = title
        self.sig = ""
        self.file = None
        self.line = 0
        self.su_bytes = None   # None = no stack-usage record
        self.su_qual = None
        self.defined = False
        # Every (file, line) any TU recorded for this symbol. The defining
        # TU reports the definition; TUs that merely call it report the
        # declaration, so an out-of-line member usually has both its .cpp
        # and .hpp locations here.
        self.locs = []


class Edge:
    __slots__ = ("src", "dst", "file", "line")

    def __init__(self, src, dst, file, line):
        self.src = src
        self.dst = dst
        self.file = file
        self.line = line


class Graph:
    """Per-TU dumps linked into one program graph: weak symbols defined
    in several TUs merge (edge union, max stack), declarations (ellipse
    nodes) merge into their definitions."""

    def __init__(self):
        self.nodes = {}
        self.edges = []
        self.adj = {}

    def node(self, title):
        n = self.nodes.get(title)
        if n is None:
            n = self.nodes[title] = Node(title)
        return n

    def load_ci_file(self, path):
        with open(path, encoding="utf-8", errors="replace") as f:
            for raw in f:
                raw = raw.strip()
                m = NODE_RE.match(raw)
                if m:
                    self._add_node(unescape(m.group(1)), unescape(m.group(2)),
                                   "ellipse" not in m.group(3))
                    continue
                m = EDGE_RE.match(raw)
                if m:
                    file, line = (None, 0)
                    if m.group(3):
                        file, line = parse_location(unescape(m.group(3)))
                    self.edges.append(Edge(unescape(m.group(1)),
                                           unescape(m.group(2)), file, line))

    def _add_node(self, title, label, defined):
        n = self.node(title)
        parts = label.split("\n")
        if parts and not n.sig:
            n.sig = parts[0]
        for part in parts[1:]:
            m = SU_RE.match(part)
            if m:
                su = int(m.group(1))
                if n.su_bytes is None or su > n.su_bytes:
                    n.su_bytes = su
                    n.su_qual = m.group(2)
            else:
                file, line = parse_location(part)
                if file is not None:
                    # The definition location is the primary one (stack
                    # traces point there); declaration locations are kept
                    # in locs so annotations work at either site.
                    if n.file is None or (defined and not n.defined):
                        n.file, n.line = file, line
                    if (file, line) not in n.locs:
                        n.locs.append((file, line))
        if defined:
            n.defined = True

    def finish(self):
        """Deduplicates edges and builds the adjacency index."""
        seen = set()
        unique = []
        for e in self.edges:
            key = (e.src, e.dst, e.file, e.line)
            if key in seen:
                continue
            seen.add(key)
            unique.append(e)
            self.node(e.src)
            self.node(e.dst)
        self.edges = unique
        self.adj = {}
        for e in self.edges:
            self.adj.setdefault(e.src, []).append(e)


# --------------------------------------------------------------------------
# Annotations.
# --------------------------------------------------------------------------

class Annotation:
    __slots__ = ("file", "line", "kind", "args", "reason", "targets",
                 "bound", "used")

    def __init__(self, file, line, kind, args):
        self.file = file
        self.line = line
        self.kind = kind
        self.args = args
        self.reason = ""
        self.targets = []
        self.bound = 0
        self.used = False


class Diagnostics:
    def __init__(self):
        self.items = []   # (file, line, rule, message, trace-lines)

    def report(self, path, line, rule, message, trace=()):
        self.items.append((path or "<unknown>", line, rule, message,
                           tuple(trace)))


def scan_annotations(src_dirs, rel_to, diags):
    """Collects `// static: kind(args)` annotations from every source
    file, validating the vocabulary (unknown kinds and missing reasons
    are violations). A reason may wrap across consecutive `//` comment
    lines; the annotation then covers every line it spans, so both the
    call-site window (line / line-1) and the definition window see it."""
    by_site = {}
    ordered = []
    for src_dir in src_dirs:
        for base, _, names in os.walk(src_dir):
            for name in sorted(names):
                if not name.endswith(SOURCE_EXTS):
                    continue
                full = os.path.join(base, name)
                rel = os.path.relpath(full, rel_to).replace(os.sep, "/")
                with open(full, encoding="utf-8") as f:
                    lines = f.readlines()
                _scan_file(rel, lines, by_site, ordered, diags)
    return by_site, ordered


def _scan_file(rel, lines, by_site, ordered, diags):
    i = 0
    while i < len(lines):
        lineno = i + 1
        matches = list(ANNOTATION_RE.finditer(lines[i]))
        if matches:
            for m in matches:
                ann = Annotation(rel, lineno, m.group(1), m.group(2).strip())
                _validate_annotation(ann, diags)
                by_site.setdefault((rel, lineno), []).append(ann)
                ordered.append(ann)
            i += 1
            continue
        m = ANNOTATION_OPEN_RE.search(lines[i])
        if m is None:
            i += 1
            continue
        # Multi-line annotation: gather comment lines until the ')'.
        parts = [m.group(2).strip()]
        j = i + 1
        closed = False
        while j < len(lines):
            cm = ANNOTATION_CONT_RE.match(lines[j])
            if cm is None:
                break
            chunk = cm.group(1)
            close = chunk.find(")")
            if close >= 0:
                parts.append(chunk[:close].strip())
                closed = True
                j += 1
                break
            parts.append(chunk.strip())
            j += 1
        if not closed:
            diags.report(rel, lineno, "annotation",
                         "unterminated static annotation (the wrapped "
                         "reason never reaches its closing ')')")
            i += 1
            continue
        ann = Annotation(rel, lineno, m.group(1),
                         " ".join(p for p in parts if p))
        _validate_annotation(ann, diags)
        for covered in range(lineno, j + 1):
            by_site.setdefault((rel, covered), []).append(ann)
        ordered.append(ann)
        i = j


def _validate_annotation(ann, diags):
    if ann.kind not in ANNOTATION_KINDS:
        diags.report(ann.file, ann.line, "annotation",
                     "unknown static annotation kind '%s' (one of: %s)"
                     % (ann.kind, ", ".join(ANNOTATION_KINDS)))
        return
    if ann.kind == "calls":
        ann.targets = [t.strip() for t in ann.args.split(",") if t.strip()]
        if not ann.targets:
            diags.report(ann.file, ann.line, "annotation",
                         "calls() needs at least one target function")
    elif ann.kind == "recurse":
        bits = ann.args.split(",", 1)
        if len(bits) != 2 or not bits[0].strip().isdigit() \
                or int(bits[0].strip()) < 1 or not bits[1].strip():
            diags.report(ann.file, ann.line, "annotation",
                         "recurse() takes (<positive depth>, <reason>)")
        else:
            ann.bound = int(bits[0].strip())
            ann.reason = bits[1].strip()
    else:  # leaf / alloc
        ann.reason = ann.args
        if not ann.reason:
            diags.report(ann.file, ann.line, "annotation",
                         "%s() needs a reason -- the zero-unexplained-"
                         "suppressions contract" % ann.kind)


# --------------------------------------------------------------------------
# The analyzer.
# --------------------------------------------------------------------------

def short_name(sig):
    """'void ns::C::f(int)' -> 'ns::C::f' (best-effort, for traces)."""
    i = sig.find("(")
    head = sig[:i] if i > 0 else sig
    return head.split()[-1] if head.split() else sig


class Analyzer:
    def __init__(self, graph, by_site, root_table, repo_root,
                 external_frame, diags, ann_prefixes=("src",)):
        self.g = graph
        self.by_site = by_site
        self.root_table = root_table
        self.repo_root = repo_root
        self.external_frame = external_frame
        self.diags = diags
        self.ann_prefixes = tuple(p.rstrip("/") for p in ann_prefixes)
        self.sanctioned_allocs = {}     # (file, line) -> annotation
        self.roots = self._resolve_roots()
        self._reported = set()          # dedup across roots
        self.reachable = set()          # defined nodes reachable from roots
        self.throw_reach = None
        self._depth_memo = {}
        self._scc_of = {}
        self._scc_members = {}
        self._scc_frames = {}
        self._scc_cycles = {}

    # -- shared helpers ----------------------------------------------------

    def rel(self, path):
        if path is None:
            return None
        if os.path.isabs(path):
            try:
                rp = os.path.relpath(path, self.repo_root)
            except ValueError:
                return path
            if not rp.startswith(".."):
                return rp.replace(os.sep, "/")
        return path.replace(os.sep, "/")

    def _resolve_roots(self):
        roots = {}
        for key, pattern in self.root_table:
            rx = re.compile(pattern)
            # Lambda closures and std::function wrappers embed their
            # enclosing function's name in their signature; they are not
            # the root itself.
            matched = [n for n in self.g.nodes.values()
                       if n.defined and rx.search(n.sig)
                       and "_Function_handler" not in n.sig
                       and "::<lambda" not in n.sig]
            if not matched:
                self.diags.report("<roots>", 0, "annotation",
                                  "root '%s' (pattern %s) matched no "
                                  "defined function in the call graph"
                                  % (key, pattern))
            roots[key] = matched
        return roots

    def _anns_at(self, edge, kinds):
        """Annotations of the given kinds on the edge's call-site line or
        the line above it (comment-only line)."""
        rel = self.rel(edge.file)
        if rel is None:
            return []
        found = []
        for line in (edge.line, edge.line - 1):
            for ann in self.by_site.get((rel, line), ()):
                if ann.kind in kinds:
                    found.append(ann)
        return found

    def _lib_defined(self, node):
        """True when every known location of the node lies outside the
        repository: libstdc++ machinery that materialized as a symbol of
        its own, where no repo-side comment can attach."""
        known = [f for f, _ in (node.locs or [(node.file, node.line)]) if f]
        if not known:
            return False
        return all(os.path.isabs(self.rel(f)) for f in known)

    def _annotatable(self, rel):
        """True when the call-site line lives in a directory we scan for
        annotations (a comment there can govern the edge)."""
        return rel is not None and any(
            rel == p or rel.startswith(p + "/") for p in self.ann_prefixes)

    def _use_cut(self, ann):
        ann.used = True
        if ann.kind == "alloc":
            self.sanctioned_allocs[(ann.file, ann.line)] = ann
        return ("cut", ann)

    def _resolve_calls(self, ann):
        titles = []
        for target in ann.targets:
            hits = [n.title for n in self.g.nodes.values()
                    if n.defined and (target + "(") in n.sig]
            if not hits:
                hits = [t for t in self.g.nodes if t == target]
            if not hits:
                self.diags.report(
                    ann.file, ann.line, "annotation",
                    "calls(%s) names a function not present in the "
                    "linked call graph (use leaf(<reason>) for "
                    "out-of-graph callees)" % target)
                continue
            titles.extend(hits)
        ann.used = True
        return titles

    def _def_ann(self, title, kinds):
        node = self.g.nodes.get(title)
        if node is None or not node.defined:
            return None
        for kind in kinds:
            ann = self._node_ann(node, kind)
            if ann is not None and (ann.reason or ann.targets):
                return ann
        return None

    def _edge_disposition(self, edge):
        """Classifies an edge under the annotation rules:
          ("cut", ann)              -- sanctioned, not traversed
          ("targets", [titles])     -- traverse these callees
          ("unresolved", hint)      -- unexplained indirect call
        Edge-site annotations win; edges whose call site lies in inlined
        library code (not annotatable) fall back to the source
        function's definition-site annotations."""
        for ann in self._anns_at(edge, ("leaf", "alloc")):
            if ann.reason:
                return self._use_cut(ann)
        site_local = self._annotatable(self.rel(edge.file))
        if edge.dst == INDIRECT_NODE:
            for ann in self._anns_at(edge, ("calls",)):
                if ann.targets:
                    return ("targets", self._resolve_calls(ann))
            if not site_local:
                srcnode = self.g.nodes.get(edge.src)
                if srcnode is not None and self._lib_defined(srcnode) \
                        and any(p.search(srcnode.sig) or p.search(srcnode.title)
                                for p in KNOWN_STD_INDIRECT):
                    return ("targets", [])  # built-in closed dispatch
                dann = self._def_ann(edge.src, ("leaf", "alloc"))
                if dann is not None:
                    return self._use_cut(dann)
                dcalls = self._def_ann(edge.src, ("calls",))
                if dcalls is not None:
                    return ("targets", self._resolve_calls(dcalls))
                return ("unresolved",
                        "annotate the enclosing function's declaration "
                        "(the call site is in inlined library code)")
            return ("unresolved",
                    "annotate with // static: calls(<fn>) or "
                    "leaf(<reason>)")
        if not site_local:
            dann = self._def_ann(edge.src, ("leaf", "alloc"))
            if dann is not None:
                return self._use_cut(dann)
        return ("targets", [edge.dst])

    def _node_ann(self, node, kind):
        """Annotation attached to the function itself. GCC records the
        definition location in the defining TU and the declaration
        location in every TU that merely calls the symbol, so an
        out-of-line member is reachable from both its header declaration
        and its .cpp definition — we accept an annotation at either (the
        declaration is the preferred spot: it reads as API contract).
        The window at each site is the recorded line or up to 3 lines
        above it (multi-line annotations count if any of their lines
        land in the window)."""
        locs = node.locs or [(node.file, node.line)]
        for file, start in locs:
            rel = self.rel(file)
            if rel is None:
                continue
            for line in range(start, max(0, start - 4), -1):
                for ann in self.by_site.get((rel, line), ()):
                    if ann.kind == kind:
                        return ann
        return None

    def _trace(self, parents, title, root_key):
        chain = []
        cur = title
        while cur is not None:
            node = self.g.nodes[cur]
            entry = short_name(node.sig) if node.sig else cur
            parent = parents.get(cur)
            if parent is not None:
                _, edge = parent
                entry += "   [%s:%d]" % (self.rel(edge.file) or "?",
                                         edge.line)
            chain.append(entry)
            cur = parent[0] if parent is not None else None
        out = ["    <root %s>" % root_key]
        for c in reversed(chain):
            out.append("    -> " + c)
        return out

    # -- reachability rules (no-alloc, no-throw, indirect-call) -----------

    def run_reach(self):
        for key, nodes in self.roots.items():
            for root in nodes:
                self._reach_from(key, root)

    def _reach_from(self, root_key, root):
        parents = {root.title: None}
        queue = [root.title]
        while queue:
            title = queue.pop()
            self.reachable.add(title)
            for edge in self.g.adj.get(title, ()):
                kind, payload = self._edge_disposition(edge)
                if kind == "cut":
                    continue
                if kind == "unresolved":
                    self._violation(
                        "indirect-call", edge, root_key,
                        "unexplained indirect/virtual call on the hot "
                        "path; %s" % payload, parents, title)
                    continue
                for target in payload:
                    self._check_terminal(edge, target, parents, root_key,
                                         title)
                    if target in parents:
                        continue
                    node = self.g.nodes.get(target)
                    if node is not None and node.defined:
                        parents[target] = (title, edge)
                        queue.append(target)

    def _check_terminal(self, edge, target, parents, root_key, src_title):
        if ALLOC_TITLE_RE.match(target):
            node = self.g.nodes.get(target)
            name = short_name(node.sig) if node is not None and node.sig \
                else target
            self._violation(
                "no-alloc", edge, root_key,
                "hot path reaches allocation entry point %s" % name,
                parents, src_title)
        elif THROW_TITLE_RE.match(target):
            node = self.g.nodes.get(target)
            name = short_name(node.sig) if node is not None and node.sig \
                else target
            self._violation(
                "no-throw", edge, root_key,
                "hot path reaches exception origination point %s" % name,
                parents, src_title)

    def _violation(self, rule, edge, root_key, message, parents, src_title):
        key = (rule, edge.src, edge.dst, edge.file, edge.line)
        if key in self._reported:
            return
        self._reported.add(key)
        trace = self._trace(parents, src_title, root_key)
        trace.append("    -> !! %s  [%s:%d]"
                     % (edge.dst.split(":")[-1],
                        self.rel(edge.file) or "?", edge.line))
        self.diags.report(self.rel(edge.file), edge.line, rule, message,
                          trace)

    # -- no-throw fix-it ---------------------------------------------------

    def compute_throw_reach(self):
        """Defined nodes from which an (uncut) path reaches a throw
        origination point. Everything else on the hot path is noexcept-
        markable."""
        rev = {}
        throwers = set()
        for edge in self.g.edges:
            kind, payload = self._edge_disposition(edge)
            targets = payload if kind == "targets" else []
            for t in targets:
                if THROW_TITLE_RE.match(t):
                    throwers.add(edge.src)
                else:
                    rev.setdefault(t, set()).add(edge.src)
        queue = list(throwers)
        reach = set(throwers)
        while queue:
            cur = queue.pop()
            for pred in rev.get(cur, ()):
                if pred not in reach:
                    reach.add(pred)
                    queue.append(pred)
        self.throw_reach = reach
        return reach

    def noexcept_candidates(self):
        if self.throw_reach is None:
            self.compute_throw_reach()
        out = []
        for title in self.reachable:
            node = self.g.nodes[title]
            rel = self.rel(node.file)
            if not node.defined or title in self.throw_reach:
                continue
            if rel is None or not rel.startswith("src/"):
                continue
            out.append(node)
        out.sort(key=lambda n: (self.rel(n.file), n.line))
        return out

    # -- bounded-stack -----------------------------------------------------

    def _stack_children(self, title):
        """(child titles, flat external-frame contribution) under cuts."""
        children = []
        flat = 0
        for edge in self.g.adj.get(title, ()):
            kind, payload = self._edge_disposition(edge)
            if kind != "targets":
                flat = self.external_frame
                continue
            for t in payload:
                node = self.g.nodes.get(t)
                if node is not None and node.defined:
                    children.append(t)
                else:
                    flat = self.external_frame
        return children, flat

    def _compute_sccs(self):
        """Iterative Tarjan over the cut graph (defined nodes only)."""
        index = {}
        low = {}
        on_stack = set()
        stack = []
        counter = [0]
        sccs = []

        for start in self.g.nodes:
            if start in index or not self.g.nodes[start].defined:
                continue
            work = [(start, 0, None)]
            while work:
                v, pi, children = work.pop()
                if pi == 0:
                    index[v] = low[v] = counter[0]
                    counter[0] += 1
                    stack.append(v)
                    on_stack.add(v)
                    children = self._stack_children(v)[0]
                recurse = False
                while pi < len(children):
                    w = children[pi]
                    pi += 1
                    if w not in index:
                        work.append((v, pi, children))
                        work.append((w, 0, None))
                        recurse = True
                        break
                    if w in on_stack:
                        low[v] = min(low[v], index[w])
                if recurse:
                    continue
                if low[v] == index[v]:
                    scc = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        scc.append(w)
                        if w == v:
                            break
                    sccs.append(scc)
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[v])
        return sccs

    def run_stack(self):
        """Computes worst-case depth per root; recursion cycles must
        carry a recurse(N) annotation or are reported unbounded."""
        for scc in self._compute_sccs():
            scc_id = scc[0]
            for t in scc:
                self._scc_of[t] = scc_id
            self._scc_members[scc_id] = scc
            cyclic = len(scc) > 1 or \
                scc_id in self._stack_children(scc_id)[0]
            frame = sum(self.g.nodes[t].su_bytes or self.external_frame
                        for t in scc)
            if cyclic:
                bound = 0
                for t in scc:
                    ann = self._node_ann(self.g.nodes[t], "recurse")
                    if ann is not None and ann.bound > 0:
                        ann.used = True
                        bound = max(bound, ann.bound)
                if bound == 0:
                    for rx, table_bound in KNOWN_STD_CYCLES:
                        if all(rx.search(self.g.nodes[t].sig)
                               for t in scc):
                            bound = table_bound
                            break
                if bound == 0:
                    self._scc_cycles[scc_id] = set(scc)
                else:
                    frame *= bound
            self._scc_frames[scc_id] = frame

        depths = {}
        for key, nodes in self.roots.items():
            best, chain = 0, []
            for root in nodes:
                d, c = self._depth(root.title)
                if d > best or not chain:
                    best, chain = d, c
            depths[key] = (best, chain)

            for title in self._reach_titles(nodes):
                scc_id = self._scc_of.get(title)
                if scc_id in self._scc_cycles:
                    cyc = self._scc_cycles.pop(scc_id)
                    node = self.g.nodes[scc_id]
                    names = ", ".join(sorted(
                        short_name(self.g.nodes[t].sig) for t in cyc))
                    self.diags.report(
                        self.rel(node.file), node.line, "bounded-stack",
                        "recursion cycle on the hot path (root %s) has no "
                        "depth bound: {%s}; annotate the definition with "
                        "// static: recurse(<N>, <reason>)" % (key, names))
        return depths

    def _reach_titles(self, root_nodes):
        seen = set()
        queue = [n.title for n in root_nodes]
        while queue:
            t = queue.pop()
            if t in seen:
                continue
            seen.add(t)
            children, _ = self._stack_children(t)
            queue.extend(children)
        return seen

    def _depth(self, title):
        """Worst-case stack depth in bytes from `title`, with the call
        chain that realizes it. Memoized over the SCC condensation
        (cross-SCC edges form a DAG; cycle members share one frame)."""
        scc_id = self._scc_of.get(title, title)
        if scc_id in self._depth_memo:
            return self._depth_memo[scc_id]
        node = self.g.nodes.get(title)
        frame = self._scc_frames.get(
            scc_id,
            (node.su_bytes if node is not None and node.su_bytes is not None
             else self.external_frame))
        # Guard against re-entry while the SCC's children are resolved.
        self._depth_memo[scc_id] = (frame, [scc_id])
        best_child, best_chain, flat_max = 0, [], 0
        for member in self._scc_members.get(scc_id, [title]):
            children, flat = self._stack_children(member)
            flat_max = max(flat_max, flat)
            for child in children:
                if self._scc_of.get(child, child) == scc_id:
                    continue
                d, c = self._depth(child)
                if d > best_child:
                    best_child, best_chain = d, c
        if best_child >= flat_max:
            chain = [scc_id] + best_chain
        else:
            chain = [scc_id, "<external frame>"]
        self._depth_memo[scc_id] = (frame + max(best_child, flat_max),
                                    chain)
        return self._depth_memo[scc_id]

    def chain_pretty(self, chain):
        parts = []
        for t in chain:
            if t == "<external frame>":
                parts.append("<external %dB>" % self.external_frame)
            else:
                node = self.g.nodes[t]
                su = self._scc_frames.get(
                    t, node.su_bytes if node.su_bytes is not None
                    else self.external_frame)
                parts.append("%s (%dB)" % (short_name(node.sig) or t, su))
        return " -> ".join(parts)


# --------------------------------------------------------------------------
# Budget file.
# --------------------------------------------------------------------------

def round_budget(measured):
    """Next 128-byte step above the measurement, plus one step of
    headroom: byte-level jitter doesn't fail the gate, real regressions
    do -- and bumps are explicit reviewed diffs."""
    return ((measured + 127) // 128) * 128 + 128


def check_budget(depths, budget_path, diags, analyzer):
    try:
        with open(budget_path, encoding="utf-8") as f:
            budget = json.load(f)
    except FileNotFoundError:
        diags.report(budget_path, 0, "bounded-stack",
                     "stack budget file missing; run with --update-budget")
        return
    roots = budget.get("roots", {})
    for key, (measured, chain) in sorted(depths.items()):
        entry = roots.get(key)
        if entry is None:
            diags.report(budget_path, 0, "bounded-stack",
                         "root '%s' has no committed stack budget; run "
                         "with --update-budget" % key)
            continue
        limit = entry.get("budget_bytes", 0)
        if measured > limit:
            diags.report(
                budget_path, 0, "bounded-stack",
                "root '%s' worst-case stack grew to %d bytes (budget %d); "
                "shrink the path or bump the budget with --update-budget"
                % (key, measured, limit),
                ["    " + analyzer.chain_pretty(chain)])
    for key in sorted(set(roots) - set(depths)):
        diags.report(budget_path, 0, "bounded-stack",
                     "budgeted root '%s' no longer exists; run "
                     "--update-budget" % key)


def write_budget(depths, budget_path, external_frame, analyzer):
    data = {
        "_comment": "Worst-case hot-path stack depths (bytes), computed "
                    "by scripts/ifot_callgraph.py from GCC su records. "
                    "Regenerate with scripts/check_callgraph.sh "
                    "--update-budget; bumps are reviewed diffs.",
        "external_frame_bytes": external_frame,
        "roots": {},
    }
    for key, (measured, chain) in sorted(depths.items()):
        data["roots"][key] = {
            "budget_bytes": round_budget(measured),
            "measured_bytes": measured,
            "deepest": analyzer.chain_pretty(chain),
        }
    with open(budget_path, "w", encoding="utf-8") as f:
        json.dump(data, f, indent=2)
        f.write("\n")


# --------------------------------------------------------------------------
# Driver.
# --------------------------------------------------------------------------

def find_ci_files(ci_dir):
    out = []
    for base, _, names in os.walk(ci_dir):
        for name in sorted(names):
            if name.endswith(".ci"):
                out.append(os.path.join(base, name))
    return out


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--ci-dir", required=True,
                    help="build tree holding the per-TU .ci dumps")
    ap.add_argument("--root", default=os.path.join(
        os.path.dirname(os.path.abspath(__file__)), ".."),
        help="repository root (default: the script's parent directory)")
    ap.add_argument("--src", action="append", default=[],
                    help="directories scanned for annotations "
                         "(default: <root>/src)")
    ap.add_argument("--budget", default=None,
                    help="stack budget JSON "
                         "(default: <root>/scripts/stack_budget.json)")
    ap.add_argument("--no-budget", action="store_true",
                    help="skip the budget comparison (fixture runs)")
    ap.add_argument("--update-budget", action="store_true",
                    help="rewrite the budget file from this run's depths")
    ap.add_argument("--top", type=int, default=0, metavar="N",
                    help="print the N deepest root stacks")
    ap.add_argument("--fixit-noexcept", action="store_true",
                    help="list hot-path functions proven throw-free "
                         "(candidates for noexcept)")
    ap.add_argument("--list-roots", action="store_true",
                    help="print the root table and exit")
    ap.add_argument("--root-spec", action="append", default=[],
                    metavar="KEY=REGEX",
                    help="override the root table (fixture runs)")
    ap.add_argument("--external-frame-bytes", type=int,
                    default=DEFAULT_EXTERNAL_FRAME_BYTES,
                    help="stack charged per opaque external call")
    args = ap.parse_args(argv)

    root_table = DEFAULT_ROOTS
    if args.root_spec:
        root_table = [tuple(spec.split("=", 1)) for spec in args.root_spec]
    if args.list_roots:
        for key, pattern in root_table:
            print("%-24s %s" % (key, pattern))
        return 0

    repo_root = os.path.abspath(args.root)
    src_dirs = [os.path.abspath(p) for p in args.src] or \
        [os.path.join(repo_root, "src")]
    budget_path = args.budget or os.path.join(repo_root, "scripts",
                                              "stack_budget.json")

    ci_files = find_ci_files(args.ci_dir)
    if not ci_files:
        print("ifot_callgraph: no .ci dumps under %s (build with "
              "-DIFOT_CALLGRAPH=ON first)" % args.ci_dir, file=sys.stderr)
        return 2

    graph = Graph()
    for path in ci_files:
        graph.load_ci_file(path)
    graph.finish()

    diags = Diagnostics()
    by_site, all_anns = scan_annotations(src_dirs, repo_root, diags)
    ann_prefixes = [os.path.relpath(d, repo_root).replace(os.sep, "/")
                    for d in src_dirs]
    analyzer = Analyzer(graph, by_site, root_table, repo_root,
                        args.external_frame_bytes, diags, ann_prefixes)

    analyzer.run_reach()
    analyzer.compute_throw_reach()
    depths = analyzer.run_stack()

    if args.update_budget:
        write_budget(depths, budget_path, args.external_frame_bytes,
                     analyzer)
        print("ifot_callgraph: wrote %s (%d roots)"
              % (budget_path, len(depths)))
    elif not args.no_budget:
        check_budget(depths, budget_path, diags, analyzer)

    for ann in all_anns:
        if not ann.used and ann.kind in ANNOTATION_KINDS:
            print("note: unused annotation %s(%s) at %s:%d (inlined away "
                  "or stale)" % (ann.kind, ann.args, ann.file, ann.line))

    if args.top > 0:
        ranked = sorted(depths.items(), key=lambda kv: -kv[1][0])
        print("== %d deepest hot-path stacks ==" % min(args.top,
                                                       len(ranked)))
        for key, (measured, chain) in ranked[:args.top]:
            print("%7d B  %s" % (measured, key))
            print("           %s" % analyzer.chain_pretty(chain))

    if args.fixit_noexcept:
        print("== proven no-throw on the hot path (noexcept candidates) ==")
        for node in analyzer.noexcept_candidates():
            print("%s:%d: %s" % (analyzer.rel(node.file), node.line,
                                 short_name(node.sig)))

    for path, line, rule, message, trace in sorted(diags.items):
        print("%s:%d: [%s] %s" % (path, line, rule, message))
        for t in trace:
            print(t)
    if diags.items:
        print("ifot_callgraph: %d violation(s)" % len(diags.items),
              file=sys.stderr)
        return 1

    nodes_defined = sum(1 for n in graph.nodes.values() if n.defined)
    print("ifot_callgraph: clean -- %d TUs, %d functions (%d reachable "
          "from %d roots), %d sanctioned allocation frontier(s), all "
          "stacks within budget"
          % (len(ci_files), nodes_defined, len(analyzer.reachable),
             len(analyzer.roots), len(analyzer.sanctioned_allocs)))
    for (file, line), ann in sorted(analyzer.sanctioned_allocs.items()):
        print("  alloc frontier: %s:%d: %s" % (file, line, ann.reason))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
