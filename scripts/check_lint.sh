#!/usr/bin/env bash
# Project-specific static contract gate. Two passes:
#
#   1. scripts/ifot_lint.py over src/ -- Result<>/Status consumption,
#      nondeterminism and raw-I/O bans, allocation-token bans on declared
#      no-alloc data-plane files, #pragma once, include order, audit
#      coverage of public mutating broker/module/middleware APIs, and
#      rejection of suppressions naming unknown rules. The enforced rule
#      list is printed up front (ifot_lint.py --list-rules).
#   2. Header self-containment: every header under src/ must compile as
#      its own translation unit (g++ -fsyntax-only on a one-line TU that
#      includes only that header).
#
# Exits non-zero with file:line diagnostics on any violation. SKIPs (exit
# 0) when python3 or a C++ compiler is unavailable so the gate degrades
# gracefully on minimal containers.
#
# Usage: scripts/check_lint.sh [--lint-only]
set -u

cd "$(dirname "$0")/.."

if ! command -v python3 >/dev/null 2>&1; then
  echo "SKIP: python3 not found; cannot run ifot_lint"
  exit 0
fi

fail=0

echo "== ifot_lint: project contract rules =="
echo "rules: $(python3 scripts/ifot_lint.py --list-rules | paste -sd' ' -)"
if ! python3 scripts/ifot_lint.py --root .; then
  fail=1
fi

if [ "${1:-}" = "--lint-only" ]; then
  exit "$fail"
fi

CXX="${CXX:-}"
if [ -z "$CXX" ]; then
  for candidate in c++ g++ clang++; do
    if command -v "$candidate" >/dev/null 2>&1; then
      CXX="$candidate"
      break
    fi
  done
fi
if [ -z "$CXX" ]; then
  echo "SKIP: no C++ compiler found; skipping header self-containment pass"
  exit "$fail"
fi

echo "== header self-containment ($CXX -std=c++20 -fsyntax-only) =="
tu="$(mktemp --suffix=.cpp)"
trap 'rm -f "$tu"' EXIT
checked=0
while IFS= read -r hdr; do
  rel="${hdr#src/}"
  printf '#include "%s"\n' "$rel" > "$tu"
  if ! "$CXX" -std=c++20 -fsyntax-only -I src "$tu" 2>/tmp/selfcontain.err; then
    echo "$hdr: [self-contained] header does not compile standalone:"
    sed 's/^/    /' /tmp/selfcontain.err
    fail=1
  fi
  checked=$((checked + 1))
done < <(find src -name '*.hpp' | sort)
echo "checked $checked headers"

if [ "$fail" -eq 0 ]; then
  echo "check_lint: OK"
fi
exit "$fail"
