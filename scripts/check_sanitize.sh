#!/usr/bin/env bash
# Configures a sanitizer build (ASan + UBSan via -DIFOT_SANITIZE=ON) in
# build-asan/ and runs the full test suite under it. Intended as a CI
# job and a local pre-merge check for the zero-copy MQTT path.
#
# Usage: scripts/check_sanitize.sh [ctest -R filter]
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=build-asan
cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DIFOT_SANITIZE=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"

export ASAN_OPTIONS=detect_leaks=1:strict_string_checks=1
export UBSAN_OPTIONS=print_stacktrace=1

cd "$BUILD_DIR"
if [ "$#" -gt 0 ]; then
  ctest --output-on-failure --no-tests=error -j "$(nproc)" -R "$1"
else
  ctest --output-on-failure --no-tests=error -j "$(nproc)"
fi
