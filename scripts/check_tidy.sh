#!/usr/bin/env bash
# Runs clang-tidy (warnings-as-errors, config in .clang-tidy) over every
# translation unit under src/, using the compilation database from a
# dedicated build-tidy/ configure. Intended as a CI job and a local
# pre-merge check.
#
# Exits 0 with a SKIP notice when no clang-tidy is installed, so the
# check degrades gracefully on gcc-only machines; CI images with clang
# get the real gate.
#
# Usage: scripts/check_tidy.sh [extra clang-tidy args...]
set -euo pipefail

cd "$(dirname "$0")/.."

TIDY="${CLANG_TIDY:-}"
if [ -z "$TIDY" ]; then
  for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                   clang-tidy-15 clang-tidy-14; do
    if command -v "$candidate" >/dev/null 2>&1; then
      TIDY="$candidate"
      break
    fi
  done
fi
if [ -z "$TIDY" ]; then
  echo "SKIP: clang-tidy not found; install clang-tidy (or set CLANG_TIDY)" \
       "to run the static-analysis gate" >&2
  exit 0
fi

BUILD_DIR=build-tidy
cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null

# Every .cpp under src/ is in the database (libraries have no conditional
# sources); headers are covered through HeaderFilterRegex.
mapfile -t sources < <(find src -name '*.cpp' | sort)
echo "clang-tidy ($TIDY) over ${#sources[@]} translation units"

runner=""
for candidate in run-clang-tidy run-clang-tidy-18 run-clang-tidy-17 \
                 run-clang-tidy-16 run-clang-tidy-15 run-clang-tidy-14; do
  if command -v "$candidate" >/dev/null 2>&1; then
    runner="$candidate"
    break
  fi
done

if [ -n "$runner" ]; then
  "$runner" -clang-tidy-binary "$TIDY" -p "$BUILD_DIR" -quiet \
            "$@" "${sources[@]}"
else
  "$TIDY" -p "$BUILD_DIR" --quiet "$@" "${sources[@]}"
fi
echo "clang-tidy: clean"
