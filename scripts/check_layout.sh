#!/usr/bin/env bash
# Memory-layout contract gate (scripts/ifot_layout.py).
#
# Configures an incremental build tree with -DIFOT_LAYOUT=ON (full DWARF
# record types in every object; Clang additionally dumps its record
# layouts during the build), builds the data-plane libraries, merges the
# per-TU layouts into one type database and enforces the committed
# per-type memory budget (scripts/memory_budget.json) over the hot
# per-session and per-message types:
#
#   layout-budget    sizeof(T) within the committed byte budget
#   layout-padding   padding holes above the per-type threshold need a
#                    reasoned `// layout: pad(N, reason)` annotation
#   layout-coverage  every budgeted type must appear in the dump
#
# SKIPs (exit 0) when python3, cmake, a C++ compiler or readelf is
# unavailable so the gate degrades gracefully on minimal containers.
# Exits non-zero with file:line diagnostics on any violation.
#
# Usage: scripts/check_layout.sh [--update-budget] [--top N] [--list]
#   --update-budget  re-measure and rewrite scripts/memory_budget.json
#                    (commit the result) instead of checking against it
#   --top N          also print the N largest audited types
#   --list           print full per-field layouts of every audited type
set -u

cd "$(dirname "$0")/.."

BUILD_DIR="${IFOT_LAYOUT_BUILD_DIR:-build-layout}"

if ! command -v python3 >/dev/null 2>&1; then
  echo "SKIP: python3 not found; cannot run ifot_layout"
  exit 0
fi
if ! command -v cmake >/dev/null 2>&1; then
  echo "SKIP: cmake not found; cannot build layout dumps"
  exit 0
fi

# Honor $CXX, else let cmake pick. Identify the compiler family to know
# whether the Clang record-layout text path is available on top of DWARF.
CXX_BIN="${CXX:-}"
if [ -z "$CXX_BIN" ]; then
  for candidate in g++ clang++ c++; do
    if command -v "$candidate" >/dev/null 2>&1; then
      CXX_BIN="$candidate"
      break
    fi
  done
fi
if [ -z "$CXX_BIN" ]; then
  echo "SKIP: no C++ compiler found; cannot build layout dumps"
  exit 0
fi
is_clang=0
if "$CXX_BIN" --version 2>/dev/null | head -1 | grep -qi clang; then
  is_clang=1
fi
if [ "$is_clang" -eq 0 ] && ! command -v readelf >/dev/null 2>&1; then
  echo "SKIP: readelf not found; the DWARF layout path needs binutils"
  exit 0
fi

update_budget=0
extra_args=()
while [ "$#" -gt 0 ]; do
  case "$1" in
    --update-budget) update_budget=1 ;;
    --top) extra_args+=(--top "${2:?--top needs a count}"); shift ;;
    --list) extra_args+=(--list) ;;
    *) echo "usage: $0 [--update-budget] [--top N] [--list]"; exit 2 ;;
  esac
  shift
done

echo "== configure + build layout dumps ($CXX_BIN, $BUILD_DIR/) =="
if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  cmake -S . -B "$BUILD_DIR" -DCMAKE_CXX_COMPILER="$CXX_BIN" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo -DIFOT_LAYOUT=ON \
        >/dev/null || exit 1
fi
jobs="$(nproc 2>/dev/null || echo 2)"
# Only the data-plane libraries carry budgeted types; tests/benches don't.
# Clang prints its record layouts on stdout during compilation: capture
# the build log so the text path feeds the analyzer alongside DWARF.
build_log="$BUILD_DIR/layout_build.log"
if ! cmake --build "$BUILD_DIR" -j "$jobs" --target ifot_mqtt ifot_net \
     >"$build_log" 2>&1; then
  cat "$build_log"
  exit 1
fi
if [ "$is_clang" -eq 1 ] && ! command -v readelf >/dev/null 2>&1 \
   && ! grep -q "Dumping AST Record Layout" "$build_log"; then
  # Clang only prints layouts for TUs it actually compiles, and with no
  # readelf the text dump is the sole source: force a full recompile.
  if ! cmake --build "$BUILD_DIR" --clean-first -j "$jobs" \
       --target ifot_mqtt ifot_net >"$build_log" 2>&1; then
    cat "$build_log"
    exit 1
  fi
fi

echo "== ifot_layout: per-type memory budget =="
args=(--root . --budget scripts/memory_budget.json)
if command -v readelf >/dev/null 2>&1; then
  args+=(--dwarf-dir "$BUILD_DIR")
fi
if [ "$is_clang" -eq 1 ] && grep -q "Dumping AST Record Layout" "$build_log"
then
  args+=(--clang-dump "$build_log")
fi
if [ "$update_budget" -eq 1 ]; then
  args+=(--update-budget)
fi
if [ "${#extra_args[@]}" -gt 0 ]; then
  args+=("${extra_args[@]}")
fi
if ! python3 scripts/ifot_layout.py "${args[@]}"; then
  exit 1
fi

echo "check_layout: OK"
exit 0
