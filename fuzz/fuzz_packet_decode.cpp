// libFuzzer harness for the MQTT wire decoder (build with -DIFOT_FUZZ=ON,
// requires Clang). Drives both entry points:
//
//  * mqtt::decode          — one-shot decode of the whole input;
//  * mqtt::StreamDecoder   — the same bytes fed in arbitrary chunkings,
//                            derived deterministically from the input so
//                            every crash reproduces from its corpus file.
//
// The decoder must never crash, hang, or allocate proportionally to a
// declared-but-absent body; any malformed input must come back as a typed
// Errc. Successfully decoded packets are re-encoded and re-decoded to
// check the codec round-trips its own output.
#include <cstddef>
#include <cstdint>

#include "common/bytes.hpp"
#include "mqtt/packet.hpp"

namespace {

using ifot::BytesView;
using ifot::mqtt::StreamDecoder;

// Feeds `data` to a StreamDecoder in chunks whose sizes cycle through a
// pattern taken from the input itself, then drains it.
void run_stream(const std::uint8_t* data, std::size_t size,
                std::size_t first_chunk) {
  StreamDecoder dec;
  dec.set_max_packet_size(1 << 20);  // keep memory bounded while fuzzing
  std::size_t off = 0;
  std::size_t chunk = first_chunk == 0 ? 1 : first_chunk;
  while (off < size) {
    const std::size_t n = chunk < size - off ? chunk : size - off;
    dec.feed(BytesView(data + off, n));
    off += n;
    chunk = (chunk * 2 + 1) % 97 + 1;  // vary chunk sizes deterministically
    for (;;) {
      auto r = dec.next();
      if (!r.ok() || !r.value()) break;  // corrupt stream or need more bytes
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // One-shot decode; on success the packet must round-trip.
  auto r = ifot::mqtt::decode(BytesView(data, size));
  if (r.ok()) {
    const ifot::Bytes wire = ifot::mqtt::encode(r.value());
    auto again = ifot::mqtt::decode(BytesView(wire));
    if (!again.ok() || !(again.value() == r.value())) __builtin_trap();
  }

  // Incremental decode under three chunking regimes: byte-at-a-time,
  // input-derived sizes, and one big write.
  run_stream(data, size, 1);
  if (size > 0) run_stream(data, size, data[0]);
  run_stream(data, size, size);
  return 0;
}
