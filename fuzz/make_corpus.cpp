// Seed-corpus generator: writes the wire encoding of one representative
// packet of every control type (plus QoS/retain/will variations) into the
// directory given as argv[1]. The fuzzer starts from valid packets and
// mutates toward the interesting malformed neighborhood.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "mqtt/packet.hpp"

namespace {

using namespace ifot;
using namespace ifot::mqtt;

std::vector<Packet> corpus_packets() {
  std::vector<Packet> out;
  out.push_back(Connect{.client_id = "seed", .keep_alive_s = 30});
  out.push_back(Connect{
      .client_id = "willful",
      .clean_session = false,
      .will = Will{.topic = "state/gone", .payload = to_bytes("bye"),
                   .qos = QoS::kAtLeastOnce, .retain = true},
      .username = "user",
      .password = "pass"});
  out.push_back(Connack{.session_present = true,
                        .code = ConnectCode::kAccepted});
  out.push_back(Publish{.topic = "flow/a", .payload = to_bytes("hello")});
  out.push_back(Publish{.topic = "flow/b", .payload = to_bytes("q2"),
                        .qos = QoS::kExactlyOnce, .retain = true,
                        .dup = true, .packet_id = 7});
  out.push_back(Publish{.topic = "flow/empty", .payload = SharedPayload{}});
  out.push_back(Puback{.packet_id = 1});
  out.push_back(Pubrec{.packet_id = 2});
  out.push_back(Pubrel{.packet_id = 3});
  out.push_back(Pubcomp{.packet_id = 4});
  out.push_back(Subscribe{
      .packet_id = 5,
      .topics = {{"flow/#", QoS::kAtLeastOnce}, {"+/x", QoS::kAtMostOnce}}});
  out.push_back(Suback{.packet_id = 5,
                       .return_codes = {0, 1, kSubackFailure}});
  out.push_back(Unsubscribe{.packet_id = 6, .topics = {"flow/#", "a/b"}});
  out.push_back(Unsuback{.packet_id = 6});
  out.push_back(Pingreq{});
  out.push_back(Pingresp{});
  out.push_back(Disconnect{});
  // Wildcard-heavy SUBSCRIBEs: the route-cache ingress path resolves
  // these against every published topic, so the decoder (and the trie
  // behind it) must survive multi-level '+', bare/trailing '#', and
  // $-prefixed filters. Appended so earlier seed numbering stays stable.
  out.push_back(Subscribe{
      .packet_id = 17,
      .topics = {{"+/+/+", QoS::kAtMostOnce},
                 {"+/+/#", QoS::kAtLeastOnce}}});
  out.push_back(Subscribe{
      .packet_id = 18,
      .topics = {{"#", QoS::kExactlyOnce}, {"+", QoS::kAtMostOnce}}});
  out.push_back(Subscribe{
      .packet_id = 19,
      .topics = {{"sport/+/player1/#", QoS::kAtLeastOnce},
                 {"$SYS/#", QoS::kAtMostOnce},
                 {"$SYS/broker/route/cache/+", QoS::kAtMostOnce}}});
  // Retained-flavored PUBLISHes: the retained-store trie ingests these
  // (set on non-empty payload, clear on empty, and $-topics must never
  // replay through wildcard filters), so the fuzzer should mutate from
  // each shape. Appended so earlier seed numbering stays stable.
  out.push_back(Publish{.topic = "retain/room1/temp",
                        .payload = to_bytes("21.5C"),
                        .qos = QoS::kAtLeastOnce, .retain = true,
                        .packet_id = 20});
  out.push_back(Publish{.topic = "retain/room1/temp",
                        .payload = SharedPayload{}, .retain = true});
  out.push_back(Publish{.topic = "$SYS/broker/uptime",
                        .payload = to_bytes("42"), .retain = true});
  // Federation namespaces: "$share/<group>/<filter>" SUBSCRIBEs (valid
  // and every malformed-group shape the broker must reject with 0x80)
  // and "$fed/<hops>/<topic>" bridge wraps (in-grammar, hop-exhausted,
  // and hostile hop levels), so the fuzzer mutates from both grammars.
  // Appended so earlier seed numbering stays stable.
  out.push_back(Subscribe{
      .packet_id = 23,
      .topics = {{"$share/analytics/city/north/#", QoS::kAtLeastOnce},
                 {"$share/g/+/t", QoS::kAtMostOnce}}});
  out.push_back(Subscribe{
      .packet_id = 24,
      .topics = {{"$share", QoS::kAtMostOnce},
                 {"$share/", QoS::kAtMostOnce},
                 {"$share/g", QoS::kAtMostOnce},
                 {"$share//f", QoS::kAtMostOnce}}});
  out.push_back(Subscribe{
      .packet_id = 25,
      .topics = {{"$share/g+x/f", QoS::kAtMostOnce},
                 {"$share/#/f", QoS::kAtMostOnce},
                 {"$share/g/", QoS::kExactlyOnce}}});
  out.push_back(Publish{.topic = "$fed/1/city/north/cam",
                        .payload = to_bytes("wrap"),
                        .qos = QoS::kAtLeastOnce, .packet_id = 26});
  out.push_back(Publish{.topic = "$fed/999/t",
                        .payload = to_bytes("far")});
  out.push_back(Publish{.topic = "$fed/0001/t",
                        .payload = to_bytes("overlong")});
  out.push_back(Publish{.topic = "$fed/x/t", .payload = to_bytes("bad")});
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-dir>\n", argv[0]);
    return 2;
  }
  const std::filesystem::path dir(argv[1]);
  std::filesystem::create_directories(dir);
  int i = 0;
  for (const Packet& p : corpus_packets()) {
    const Bytes wire = encode(p);
    const std::string name =
        std::string("seed-") + std::to_string(i++) + "-" +
        packet_type_name(packet_type(p));
    std::ofstream f(dir / name, std::ios::binary);
    f.write(reinterpret_cast<const char*>(wire.data()),
            static_cast<std::streamsize>(wire.size()));
    if (!f) {
      std::fprintf(stderr, "failed to write %s\n", name.c_str());
      return 1;
    }
  }
  std::printf("wrote %d corpus files to %s\n", i, dir.string().c_str());
  return 0;
}
